"""Ablation benchmarks for the behavior model's design choices.

DESIGN.md calls out several modeling decisions; each ablation disables
one and shows which paper observation breaks, demonstrating that the
corresponding mechanism — not calibration slack — carries the result.

* **latch-fight load cost** (``drive_load_alpha = 0``): the NOT success
  cliff across destination-row counts (Fig. 7 / Obs. 4) disappears.
* **coupling** (``coupling_noise_sigma = op_coupling_flip_z = 0``): the
  all-1s/0s vs random data-pattern gap (Fig. 18 / Obs. 16) collapses.
* **common-mode overdrive loss** (``common_mode_noise_gain = 0``): the
  OR-beats-AND asymmetry (Obs. 12) and the deep AND valleys of Fig. 16
  vanish together.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro import SeedTree, sk_hynix_chip
from repro.bender import DramBenderHost
from repro.core import (
    LogicSuccessMeasurement,
    NotSuccessMeasurement,
    find_pattern_pair,
)
from repro.dram import ActivationKind, Module
from repro.dram.calibration import calibration_for

from conftest import BENCH_SCALE

TRIALS = 120


def _module(**calibration_overrides) -> Module:
    config = sk_hynix_chip().with_geometry(BENCH_SCALE.geometry)
    calibration = replace(calibration_for(config), **calibration_overrides)
    return Module(
        config, chip_count=1, seed_tree=SeedTree(31), calibration=calibration
    )


def _not_means(module: Module, counts=(1, 8, 16)) -> dict:
    host = DramBenderHost(module)
    means = {}
    for n in counts:
        src, dst = find_pattern_pair(
            module.decoder, module.config.geometry, 0, 0, 1, n,
            ActivationKind.N_TO_N, seed=n,
        )
        measurement = NotSuccessMeasurement(host, 0, src, dst)
        means[n] = measurement.run(TRIALS, np.random.default_rng(n)).mean_rate
    return means


def _pattern_gap(module: Module, n=16) -> float:
    """all-1s/0s minus random mean success for an n-input AND."""
    host = DramBenderHost(module)
    ref, com = find_pattern_pair(
        module.decoder, module.config.geometry, 0, 0, 1, n,
        ActivationKind.N_TO_N, seed=9,
    )
    measurement = LogicSuccessMeasurement(host, 0, ref, com, base_op="and")
    fixed = measurement.run(2 * TRIALS, np.random.default_rng(1), mode="all01")
    random_ = measurement.run(2 * TRIALS, np.random.default_rng(1), mode="random")
    return fixed.primary.mean_rate - random_.primary.mean_rate


def _or_minus_and(module: Module, n=2) -> float:
    host = DramBenderHost(module)
    ref, com = find_pattern_pair(
        module.decoder, module.config.geometry, 0, 0, 1, n,
        ActivationKind.N_TO_N, seed=13,
    )
    and_pair = LogicSuccessMeasurement(host, 0, ref, com, base_op="and").run(
        TRIALS, np.random.default_rng(2)
    )
    or_pair = LogicSuccessMeasurement(host, 0, ref, com, base_op="or").run(
        TRIALS, np.random.default_rng(2)
    )
    return or_pair.primary.mean_rate - and_pair.primary.mean_rate


def test_ablation_drive_load(benchmark):
    """No per-row drive cost -> no Fig. 7 cliff."""

    def run():
        return _not_means(_module()), _not_means(_module(drive_load_alpha=0.0))

    full, ablated = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  full model:   NOT means {({k: round(v, 3) for k, v in full.items()})}")
    print(f"  alpha=0:      NOT means {({k: round(v, 3) for k, v in ablated.items()})}")
    assert full[1] - full[16] > 0.3, "full model must show the cliff"
    assert ablated[1] - ablated[16] < 0.1, "ablated model must be flat"


def test_ablation_coupling(benchmark):
    """No coupling -> no data-pattern dependence (Obs. 16)."""

    def run():
        with_coupling = _pattern_gap(_module())
        without = _pattern_gap(
            _module(coupling_noise_sigma=0.0, op_coupling_flip_z=0.0)
        )
        return with_coupling, without

    with_coupling, without = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  all01-minus-random gap with coupling:    {with_coupling * 100:+.2f}%")
    print(f"  all01-minus-random gap without coupling: {without * 100:+.2f}%")
    assert with_coupling > without - 0.005

def test_ablation_common_mode(benchmark):
    """No overdrive loss -> OR no longer beats AND (Obs. 12)."""

    def run():
        asymmetric = _or_minus_and(_module())
        flat = _or_minus_and(
            _module(
                common_mode_noise_gain=0.0,
                common_mode_offset_gain=0.0,
                low_common_mode_offset_gain=0.0,
            )
        )
        return asymmetric, flat

    asymmetric, flat = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  OR minus AND with overdrive loss:    {asymmetric * 100:+.2f}%")
    print(f"  OR minus AND without overdrive loss: {flat * 100:+.2f}%")
    assert asymmetric > flat + 0.01
