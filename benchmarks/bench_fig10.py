"""Benchmark: regenerate Fig. 10: NOT vs temperature (see DESIGN.md experiment index)."""

from conftest import run_and_report


def test_fig10(benchmark):
    result = run_and_report(benchmark, "fig10")
    assert result.groups or result.extras
