"""Benchmark: regenerate Fig. 10: NOT vs temperature (see DESIGN.md experiment index)."""

from conftest import run_and_report


def test_fig10(benchmark, sweep_jobs):
    result = run_and_report(benchmark, "fig10", jobs=sweep_jobs)
    assert result.groups or result.extras
