"""Substrate benchmark: analog reference vs the fitted surrogate.

Runs the same fleet-style characterization workload — NOT sweeps at 1
and 2 destination rows plus AND/OR sweeps at 2 and 4 inputs, full-preset
trial counts on the smoke fleet — once through the analog reference
backend and once through a surrogate table fitted immediately before
timing, then writes timings and the speedup to ``BENCH_substrate.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_substrate.py
    PYTHONPATH=src python benchmarks/bench_substrate.py --out other.json

The headline number is the sweep-workload speedup: the surrogate exists
to make fleet-scale sweeps ~hundreds of times cheaper than the analog
model while serving the same fitted statistics.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

from repro.atomicio import atomic_write_text
from repro.characterization.experiments.base import (
    LogicVariant,
    NotVariant,
    logic_sweep,
    not_sweep,
)
from repro.characterization.runner import FULL, SMOKE
from repro.substrate import SMOKE_GRID, fit_surrogate

#: Smoke fleet at 2.5x the full preset's trial count: big enough that
#: per-trial work dwarfs the fleet-construction cost both backends
#: share, small enough to finish in seconds.
BENCH_SCALE = dataclasses.replace(
    SMOKE, name="bench-substrate", trials=FULL.trials * 5 // 2
)

NOT_VARIANTS = (NotVariant(1), NotVariant(2))
LOGIC_VARIANTS = (
    LogicVariant("and", 2),
    LogicVariant("and", 4),
    LogicVariant("or", 2),
    LogicVariant("or", 4),
)


def _run_workload(scale, seed: int):
    return (
        not_sweep(scale, seed, NOT_VARIANTS),
        logic_sweep(scale, seed, LOGIC_VARIANTS),
    )


def _timed(fn, *args):
    # staticcheck: ignore[DET203] wall-clock is the measured quantity here
    start = time.perf_counter()
    value = fn(*args)
    elapsed = time.perf_counter() - start  # staticcheck: ignore[DET203]
    return elapsed, value


def run_benchmark(seed: int = 1, table_path: Optional[str] = None) -> Dict[str, object]:
    if table_path is None:
        table_dir = tempfile.mkdtemp(prefix="bench-substrate-")
        table_path = str(Path(table_dir) / "surrogate_table.json")

    fit_s, table = _timed(fit_surrogate, SMOKE, seed, SMOKE_GRID)
    table.save(table_path)

    analog_s, (analog_not, analog_logic) = _timed(
        _run_workload, BENCH_SCALE, seed
    )
    surrogate_scale = BENCH_SCALE.with_backend(f"surrogate:{table_path}")
    surrogate_s, (surrogate_not, surrogate_logic) = _timed(
        _run_workload, surrogate_scale, seed
    )

    same_groups = sorted(surrogate_not) == sorted(analog_not) and sorted(
        surrogate_logic
    ) == sorted(analog_logic)
    if not same_groups:
        raise AssertionError(
            "surrogate sweep produced different group labels than analog"
        )

    return {
        "benchmark": "substrate",
        "scale": BENCH_SCALE.name,
        "trials": BENCH_SCALE.trials,
        "seed": seed,
        "jobs": 1,
        "workload": {
            "not_variants": [v.n_destination for v in NOT_VARIANTS],
            "logic_variants": [
                [v.base_op, v.n_inputs] for v in LOGIC_VARIANTS
            ],
        },
        "fit_s": round(fit_s, 4),
        "fitted_cells": len(table),
        "analog_s": round(analog_s, 4),
        "surrogate_s": round(surrogate_s, 4),
        "speedup": round(analog_s / surrogate_s, 1),
        "same_group_labels": same_groups,
    }


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_substrate.json")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    report = run_benchmark(seed=args.seed)
    atomic_write_text(args.out, json.dumps(report, indent=2) + "\n")

    print(
        f"fit       {report['fit_s']:8.3f}s  ({report['fitted_cells']} cells)"
    )
    print(f"analog    {report['analog_s']:8.3f}s")
    print(f"surrogate {report['surrogate_s']:8.3f}s")
    print(f"\nheadline: {report['speedup']:.1f}x surrogate speedup on the "
          f"sweep workload ({report['trials']} trials)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
