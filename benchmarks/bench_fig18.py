"""Benchmark: regenerate Fig. 18: ops vs data pattern (see DESIGN.md experiment index)."""

from conftest import run_and_report


def test_fig18(benchmark, sweep_jobs):
    result = run_and_report(benchmark, "fig18", jobs=sweep_jobs)
    assert result.groups or result.extras
