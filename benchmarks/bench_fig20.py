"""Benchmark: regenerate Fig. 20: ops vs DRAM speed rate (see DESIGN.md experiment index)."""

from conftest import run_and_report


def test_fig20(benchmark, sweep_jobs):
    result = run_and_report(benchmark, "fig20", jobs=sweep_jobs)
    assert result.groups or result.extras
