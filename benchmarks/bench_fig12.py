"""Benchmark: regenerate Fig. 12: NOT vs density / die revision (see DESIGN.md experiment index)."""

from conftest import run_and_report


def test_fig12(benchmark, sweep_jobs):
    result = run_and_report(benchmark, "fig12", jobs=sweep_jobs)
    assert result.groups or result.extras
