"""Ablation: calibrated vs hypothetical hierarchical row decoder.

The calibrated decoder reproduces the measured Fig. 5 coverage; the
mechanistic :class:`HierarchicalRowDecoder` realizes the PULSAR-style
circuit hypothesis, whose address combinatorics predict a *different*
coverage distribution (binomial in the local-wordline Hamming distance).
The gap is the reason the characterization defaults to the calibrated
model — and quantifies how far the public hypothesis is from the
measured silicon behavior.
"""

import numpy as np
import pytest

from repro import SeedTree, sk_hynix_chip
from repro.bender import DramBenderHost
from repro.dram import Module
from repro.dram.decoder import FIG5_COVERAGE, ActivationKind
from repro.reveng import ActivationScanner, coverage_from_counts

from conftest import BENCH_SCALE

SAMPLES = 600


def _coverage(decoder_model: str) -> dict:
    config = sk_hynix_chip().with_geometry(BENCH_SCALE.geometry)
    module = Module(
        config, chip_count=1, seed_tree=SeedTree(17), decoder_model=decoder_model
    )
    scanner = ActivationScanner(DramBenderHost(module), 0, 0, 1, seed=3)
    return coverage_from_counts(scanner.scan(SAMPLES))


def test_ablation_decoder_models(benchmark):
    def run():
        return _coverage("calibrated"), _coverage("hierarchical")

    calibrated, hierarchical = benchmark.pedantic(run, rounds=1, iterations=1)
    paper = {
        f"{n}:{n if kind is ActivationKind.N_TO_N else 2 * n}": p
        for (n, kind), p in FIG5_COVERAGE.items()
    }
    print("\n  type    paper   calibrated  hierarchical")
    for label in sorted(paper, key=lambda k: paper[k], reverse=True):
        print(
            f"  {label:>6}  {paper[label] * 100:5.2f}%   "
            f"{calibrated.get(label, 0.0) * 100:6.2f}%     "
            f"{hierarchical.get(label, 0.0) * 100:6.2f}%"
        )

    def distance(coverage: dict) -> float:
        return sum(
            abs(coverage.get(label, 0.0) - value) for label, value in paper.items()
        )

    calibrated_gap = distance(calibrated)
    hierarchical_gap = distance(hierarchical)
    print(f"  L1 distance to Fig. 5: calibrated {calibrated_gap:.3f}, "
          f"hierarchical {hierarchical_gap:.3f}")
    assert calibrated_gap < hierarchical_gap
