"""Benchmark: regenerate Fig. 7: NOT vs destination rows (see DESIGN.md experiment index)."""

from conftest import run_and_report


def test_fig07(benchmark, sweep_jobs):
    result = run_and_report(benchmark, "fig7", jobs=sweep_jobs)
    assert result.groups or result.extras
