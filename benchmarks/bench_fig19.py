"""Benchmark: regenerate Fig. 19: ops vs temperature (see DESIGN.md experiment index)."""

from conftest import run_and_report


def test_fig19(benchmark, sweep_jobs):
    result = run_and_report(benchmark, "fig19", jobs=sweep_jobs)
    assert result.groups or result.extras
