"""Benchmark: regenerate Fig. 16: ops vs logic-1 count in operands (see DESIGN.md experiment index)."""

from conftest import run_and_report


def test_fig16(benchmark, sweep_jobs):
    result = run_and_report(benchmark, "fig16", jobs=sweep_jobs)
    assert result.groups or result.extras
