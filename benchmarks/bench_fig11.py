"""Benchmark: regenerate Fig. 11: NOT vs DRAM speed rate (see DESIGN.md experiment index)."""

from conftest import run_and_report


def test_fig11(benchmark, sweep_jobs):
    result = run_and_report(benchmark, "fig11", jobs=sweep_jobs)
    assert result.groups or result.extras
