"""Benchmark: regenerate Fig. 11: NOT vs DRAM speed rate (see DESIGN.md experiment index)."""

from conftest import run_and_report


def test_fig11(benchmark):
    result = run_and_report(benchmark, "fig11")
    assert result.groups or result.extras
