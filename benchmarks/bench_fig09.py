"""Benchmark: regenerate Fig. 9: NOT vs distance to sense amplifiers (see DESIGN.md experiment index)."""

from conftest import run_and_report


def test_fig09(benchmark, sweep_jobs):
    result = run_and_report(benchmark, "fig9", jobs=sweep_jobs)
    assert result.groups or result.extras
