"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
the package can be installed in fully offline environments where pip's
PEP-517 editable path is unavailable (no ``wheel`` package):

    python setup.py develop
"""

from setuptools import setup

setup()
