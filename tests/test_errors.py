"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AddressError,
    CommandSequenceError,
    ConfigurationError,
    ProgramError,
    ReproError,
    ReverseEngineeringError,
    TargetQuarantinedError,
    ThermalError,
    TimingViolationError,
    TransientInfrastructureError,
    UnsupportedOperationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            AddressError,
            CommandSequenceError,
            ConfigurationError,
            ProgramError,
            ReverseEngineeringError,
            TargetQuarantinedError,
            ThermalError,
            TimingViolationError,
            TransientInfrastructureError,
            UnsupportedOperationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_timing_violation_is_a_command_sequence_error(self):
        # Strict-mode consumers can catch either.
        assert issubclass(TimingViolationError, CommandSequenceError)

    def test_library_never_raises_bare_exceptions(self, ideal_host):
        # A representative misuse path raises a ReproError subclass, not
        # a bare Exception/ValueError dressed up in library context.
        from repro.core.not_op import NotOperation

        with pytest.raises(ReproError):
            NotOperation(ideal_host, 0, 5, 10)  # same subarray
