"""Tests for program execution and timing-rule checking."""

import numpy as np
import pytest

from repro.bender.executor import ProgramExecutor
from repro.bender.program import TestProgram
from repro.errors import TimingViolationError


def random_bits(host, seed=0):
    return np.random.default_rng(seed).integers(
        0, 2, host.module.row_bits, dtype=np.uint8
    )


class TestExecution:
    def test_read_records_carry_labels(self, ideal_host):
        bits = random_bits(ideal_host)
        ideal_host.fill_row(0, 3, bits)
        timing = ideal_host.timing
        program = (
            ideal_host.new_program("p")
            .act(0, 3, wait_ns=timing.t_rcd)
            .rd(0, 3, wait_ns=timing.t_ras, label="probe")
            .pre(0, wait_ns=timing.t_rp)
        )
        result = ideal_host.run(program)
        assert np.array_equal(result.read_by_label("probe"), bits)
        assert result.reads[0].row == 3

    def test_missing_label_raises(self, ideal_host):
        timing = ideal_host.timing
        program = (
            ideal_host.new_program()
            .act(0, 3, wait_ns=timing.t_rcd)
            .rd(0, 3, wait_ns=timing.t_ras, label="a")
            .pre(0)
        )
        result = ideal_host.run(program)
        with pytest.raises(KeyError):
            result.read_by_label("b")

    def test_time_is_monotone_across_programs(self, ideal_host):
        executor = ideal_host.executor
        t0 = executor.now_ns
        ideal_host.write_row(0, 1, random_bits(ideal_host))
        assert executor.now_ns > t0

    def test_trailing_pre_settles(self, ideal_host):
        timing = ideal_host.timing
        program = (
            ideal_host.new_program()
            .act(0, 5, wait_ns=timing.t_ras)
            .pre(0, wait_cycles=1)
        )
        ideal_host.run(program)
        assert not ideal_host.module.chips[0].bank(0).is_open

    def test_duration_reported(self, ideal_host):
        program = ideal_host.new_program().nop(wait_cycles=100)
        result = ideal_host.run(program)
        assert result.duration_ns >= 100 * ideal_host.timing.t_ck


class TestTimingChecks:
    def test_violations_recorded_in_permissive_mode(self, ideal_host):
        program = (
            ideal_host.new_program()
            .act(0, 0, wait_cycles=2)
            .pre(0, wait_cycles=2)
            .act(0, 192, wait_ns=ideal_host.timing.t_ras)
            .pre(0)
        )
        result = ideal_host.run(program)
        assert any("tRAS" in v for v in result.violations)
        assert any("tRP" in v for v in result.violations)

    def test_strict_mode_raises(self, ideal_module):
        from repro.bender.host import DramBenderHost

        host = DramBenderHost(ideal_module, strict=True)
        program = (
            host.new_program("violating")
            .act(0, 0, wait_cycles=2)
            .pre(0, wait_cycles=2)
            .act(0, 192, wait_ns=host.timing.t_ras)
            .pre(0)
        )
        with pytest.raises(TimingViolationError):
            host.run(program)

    def test_compliant_program_has_no_violations(self, ideal_host):
        timing = ideal_host.timing
        program = (
            ideal_host.new_program()
            .act(0, 0, wait_ns=timing.t_ras)
            .pre(0, wait_ns=timing.t_rp)
            .act(0, 1, wait_ns=timing.t_ras)
            .pre(0, wait_ns=timing.t_rp)
        )
        result = ideal_host.run(program)
        assert result.violations == []

    def test_trcd_checked(self, ideal_host):
        program = (
            ideal_host.new_program()
            .act(0, 0, wait_cycles=1)
            .rd(0, 0, wait_ns=ideal_host.timing.t_ras)
            .pre(0)
        )
        result = ideal_host.run(program)
        assert any("tRCD" in v for v in result.violations)


class TestHostRowIO:
    def test_write_read_round_trip(self, ideal_host, rng):
        bits = random_bits(ideal_host, 9)
        ideal_host.write_row(0, 17, bits)
        assert np.array_equal(ideal_host.read_row(0, 17), bits)

    def test_command_path_matches_backdoor(self, ideal_host):
        bits = random_bits(ideal_host, 10)
        ideal_host.write_row(0, 18, bits)
        assert np.array_equal(ideal_host.peek_row(0, 18), bits)

    def test_fill_subarray(self, ideal_host):
        bits = random_bits(ideal_host, 11)
        ideal_host.fill_subarray(0, 2, bits)
        geometry = ideal_host.module.config.geometry
        base = 2 * geometry.rows_per_subarray
        for offset in (0, 50, geometry.rows_per_subarray - 1):
            assert np.array_equal(ideal_host.peek_row(0, base + offset), bits)

    def test_random_bits_width_and_density(self, ideal_host, rng):
        bits = ideal_host.random_bits(rng)
        assert bits.shape == (ideal_host.module.row_bits,)
        dense = ideal_host.random_bits(rng, density=1.0)
        assert np.all(dense == 1)
