"""The executor's static pre-flight gate (verify= modes)."""

import logging

import pytest

from repro import SeedTree, sk_hynix_chip
from repro.bender.executor import ProgramExecutor
from repro.bender.host import DramBenderHost
from repro.bender.infrastructure import TestingInfrastructure
from repro.core.sequences import frac_program, logic_program, not_program
from repro.dram.module import Module
from repro.errors import ProgramVerificationError


@pytest.fixture()
def module():
    return Module(sk_hynix_chip(), chip_count=1, seed_tree=SeedTree(0))


def _bad_not(module):
    """NOT whose destination is three subarrays from the source."""
    geometry = module.config.geometry
    timing = module.chips[0].timing
    return not_program(
        timing, 0, geometry.bank_row(0, 5), geometry.bank_row(3, 5)
    )


def _good_not(module):
    geometry = module.config.geometry
    timing = module.chips[0].timing
    return not_program(
        timing, 0, geometry.bank_row(0, 5), geometry.bank_row(1, 5)
    )


def test_error_mode_refuses_isolated_subarray_not(module):
    """Acceptance criterion: verify="error" refuses a NOT program whose
    destination rows are not in a sense-amp-sharing neighboring subarray."""
    executor = ProgramExecutor(module, verify="error")
    with pytest.raises(ProgramVerificationError) as excinfo:
        executor.run(_bad_not(module))
    assert "FC104" in str(excinfo.value)
    assert {d.rule for d in excinfo.value.diagnostics} >= {"FC104"}
    # Nothing reached the device and no session time elapsed.
    assert executor.now_ns == 0.0


def test_refusal_does_not_corrupt_verifier_session(module):
    executor = ProgramExecutor(module, verify="error")
    with pytest.raises(ProgramVerificationError):
        executor.run(_bad_not(module))
    # The refused program left the verifier session untouched, so a good
    # program still verifies and runs from a clean state.
    result = executor.run(_good_not(module))
    assert result.diagnostics == ()


def test_warn_mode_runs_and_attaches_diagnostics(module):
    executor = ProgramExecutor(module, verify="warn")
    result = executor.run(_bad_not(module))
    assert {d.rule for d in result.diagnostics} >= {"FC104"}


def test_off_mode_skips_verification(module):
    executor = ProgramExecutor(module, verify="off")
    result = executor.run(_bad_not(module))
    assert result.diagnostics == ()


def test_invalid_mode_rejected(module):
    with pytest.raises(ValueError):
        ProgramExecutor(module, verify="loud")


def test_suppress_rules_silences_findings(module):
    executor = ProgramExecutor(
        module, verify="error", suppress_rules=("FC104", "FC113")
    )
    result = executor.run(_bad_not(module))  # no longer refused
    assert result.diagnostics == ()


def test_warn_mode_logs_once_per_rule(module, caplog):
    executor = ProgramExecutor(module, verify="warn")
    with caplog.at_level(logging.WARNING, logger="repro.staticcheck"):
        executor.run(_bad_not(module))
        executor.run(_bad_not(module))
    fc104_logs = [r for r in caplog.records if "FC104" in r.getMessage()]
    assert len(fc104_logs) == 1


def test_session_state_carries_across_programs(module):
    """frac then logic in one executor session: no FC106 warning."""
    timing = module.chips[0].timing
    geometry = module.config.geometry
    executor = ProgramExecutor(module, verify="warn")
    frac_result = executor.run(frac_program(timing, 0, 3))
    assert frac_result.diagnostics == ()
    logic_result = executor.run(
        logic_program(timing, 0, 3, geometry.bank_row(1, 9))
    )
    assert "FC106" not in {d.rule for d in logic_result.diagnostics}


def test_host_and_infrastructure_thread_verify(module):
    host = DramBenderHost(module, verify="error")
    with pytest.raises(ProgramVerificationError):
        host.run(_bad_not(module))

    infra = TestingInfrastructure(
        Module(sk_hynix_chip(), chip_count=1, seed_tree=SeedTree(0)),
        verify="error",
        suppress_rules=("FC104", "FC113"),
    )
    result = infra.host.run(_bad_not(infra.module))
    assert result.diagnostics == ()


def test_host_row_access_verifies_clean(module):
    import numpy as np

    host = DramBenderHost(module, verify="error")
    bits = np.zeros(module.row_bits, dtype=np.uint8)
    host.write_row(0, 7, bits)
    out = host.read_row(0, 7)
    assert out.shape == bits.shape
