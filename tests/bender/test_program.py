"""Tests for command encoding and the test-program builder."""

import numpy as np
import pytest

from repro.bender.commands import Command, Opcode
from repro.bender.program import TestProgram
from repro.dram.timing import timing_for_speed
from repro.errors import ProgramError


class TestCommand:
    def test_act_requires_row(self):
        with pytest.raises(ProgramError):
            Command(Opcode.ACT, bank=0)

    def test_wr_requires_data(self):
        with pytest.raises(ProgramError):
            Command(Opcode.WR, bank=0, row=1)

    def test_wait_cycles_minimum(self):
        with pytest.raises(ProgramError):
            Command(Opcode.PRE, wait_cycles=0)

    def test_negative_bank(self):
        with pytest.raises(ProgramError):
            Command(Opcode.PRE, bank=-1)

    def test_describe(self):
        command = Command(Opcode.ACT, bank=2, row=17, wait_cycles=3, label="x")
        text = command.describe()
        assert "ACT" in text and "b2" in text and "r17" in text and "+3ck" in text


class TestProgramBuilder:
    def setup_method(self):
        self.timing = timing_for_speed(2666)

    def test_fluent_chaining(self):
        program = (
            TestProgram(self.timing)
            .act(0, 5, wait_ns=self.timing.t_ras)
            .pre(0, wait_ns=self.timing.t_rp)
        )
        assert len(program) == 2
        opcodes = [command.opcode for command in program]
        assert opcodes == [Opcode.ACT, Opcode.PRE]

    def test_wait_ns_quantized_up(self):
        program = TestProgram(self.timing).act(0, 0, wait_ns=1.0)
        assert program.commands[0].wait_cycles == 2  # ceil(1.0 / 0.75)

    def test_wait_defaults_to_one_cycle(self):
        program = TestProgram(self.timing).pre(0)
        assert program.commands[0].wait_cycles == 1

    def test_both_waits_rejected(self):
        with pytest.raises(ProgramError):
            TestProgram(self.timing).act(0, 0, wait_ns=5.0, wait_cycles=3)

    def test_duration(self):
        program = (
            TestProgram(self.timing)
            .act(0, 0, wait_cycles=10)
            .pre(0, wait_cycles=20)
        )
        assert program.duration_ns == pytest.approx(30 * self.timing.t_ck)

    def test_wr_data_stored(self):
        data = np.ones(8, dtype=np.uint8)
        program = TestProgram(self.timing).wr(0, 3, data, wait_cycles=2)
        assert np.array_equal(program.commands[0].data, data)

    def test_ref_defaults_to_trfc(self):
        program = TestProgram(self.timing).ref(0)
        assert program.commands[0].wait_cycles == self.timing.cycles(
            self.timing.t_rfc
        )

    def test_describe_contains_every_command(self):
        program = (
            TestProgram(self.timing, name="demo").act(0, 1).pre(0).nop()
        )
        text = program.describe()
        assert "demo" in text
        assert text.count("\n") == 3
