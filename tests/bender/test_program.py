"""Tests for command encoding and the test-program builder."""

import numpy as np
import pytest

from repro.bender.commands import Command, Opcode
from repro.bender.program import TestProgram
from repro.dram.timing import timing_for_speed
from repro.errors import ProgramError


class TestCommand:
    def test_act_requires_row(self):
        with pytest.raises(ProgramError):
            Command(Opcode.ACT, bank=0)

    def test_wr_requires_data(self):
        with pytest.raises(ProgramError):
            Command(Opcode.WR, bank=0, row=1)

    def test_wait_cycles_minimum(self):
        with pytest.raises(ProgramError):
            Command(Opcode.PRE, wait_cycles=0)

    def test_negative_bank(self):
        with pytest.raises(ProgramError):
            Command(Opcode.PRE, bank=-1)

    def test_describe(self):
        command = Command(Opcode.ACT, bank=2, row=17, wait_cycles=3, label="x")
        text = command.describe()
        assert "ACT" in text and "b2" in text and "r17" in text and "+3ck" in text

    def test_row_rejected_on_rowless_opcodes(self):
        for opcode in (Opcode.PRE, Opcode.REF, Opcode.NOP):
            with pytest.raises(ProgramError, match="FC110"):
                Command(opcode, bank=0, row=5)

    def test_describe_notes_quantized_wait(self):
        command = Command(
            Opcode.PRE, bank=0, wait_cycles=1, requested_wait_ns=0.5, quantized=True
        )
        assert "quantized from 0.5ns" in command.describe()


class TestProgramBuilder:
    def setup_method(self):
        self.timing = timing_for_speed(2666)

    def test_fluent_chaining(self):
        program = (
            TestProgram(self.timing)
            .act(0, 5, wait_ns=self.timing.t_ras)
            .pre(0, wait_ns=self.timing.t_rp)
        )
        assert len(program) == 2
        opcodes = [command.opcode for command in program]
        assert opcodes == [Opcode.ACT, Opcode.PRE]

    def test_wait_ns_quantized_up(self):
        program = TestProgram(self.timing).act(0, 0, wait_ns=1.0)
        assert program.commands[0].wait_cycles == 2  # ceil(1.0 / 0.75)

    def test_wait_defaults_to_one_cycle(self):
        program = TestProgram(self.timing).pre(0)
        assert program.commands[0].wait_cycles == 1

    def test_both_waits_rejected(self):
        with pytest.raises(ProgramError):
            TestProgram(self.timing).act(0, 0, wait_ns=5.0, wait_cycles=3)

    def test_duration(self):
        program = (
            TestProgram(self.timing)
            .act(0, 0, wait_cycles=10)
            .pre(0, wait_cycles=20)
        )
        assert program.duration_ns == pytest.approx(30 * self.timing.t_ck)

    def test_wr_data_stored(self):
        data = np.ones(8, dtype=np.uint8)
        program = TestProgram(self.timing).wr(0, 3, data, wait_cycles=2)
        assert np.array_equal(program.commands[0].data, data)

    def test_ref_defaults_to_trfc(self):
        program = TestProgram(self.timing).ref(0)
        assert program.commands[0].wait_cycles == self.timing.cycles(
            self.timing.t_rfc
        )

    def test_describe_contains_every_command(self):
        program = (
            TestProgram(self.timing, name="demo").act(0, 1).pre(0).nop()
        )
        text = program.describe()
        assert "demo" in text
        assert text.count("\n") == 3

    def test_subcycle_wait_records_quantization(self):
        program = TestProgram(self.timing).act(0, 0, wait_ns=0.5)
        command = program.commands[0]
        assert command.wait_cycles == 1
        assert command.quantized
        assert command.requested_wait_ns == pytest.approx(0.5)
        assert "quantized" in command.describe()

    def test_full_cycle_wait_not_marked_quantized(self):
        program = TestProgram(self.timing).act(0, 0, wait_ns=self.timing.t_ras)
        command = program.commands[0]
        assert not command.quantized
        assert command.requested_wait_ns == pytest.approx(self.timing.t_ras)
        assert "quantized" not in command.describe()

    def test_cycle_wait_has_no_requested_ns(self):
        program = TestProgram(self.timing).act(0, 0, wait_cycles=3)
        command = program.commands[0]
        assert command.requested_wait_ns is None and not command.quantized

    def test_intent_validated(self):
        TestProgram(self.timing, intent="not")  # known intents accepted
        with pytest.raises(ProgramError):
            TestProgram(self.timing, intent="invert")
