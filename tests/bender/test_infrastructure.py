"""Tests for the bundled testing infrastructure (the Fig.-4 bench)."""

import numpy as np
import pytest

from repro import sk_hynix_chip
from repro.bender.infrastructure import TestingInfrastructure
from repro.characterization.fleet import table1_specs
from tests.conftest import SMALL_GEOMETRY


class TestInfrastructure:
    def test_for_config_builds_everything(self):
        infra = TestingInfrastructure.for_config(
            sk_hynix_chip().with_geometry(SMALL_GEOMETRY), chip_count=2, seed=1
        )
        assert infra.module.chip_count == 2
        assert infra.host.module is infra.module
        assert infra.thermal.module is infra.module

    def test_for_spec_builds_from_table1(self):
        spec = table1_specs(SMALL_GEOMETRY)[0]
        infra = TestingInfrastructure.for_spec(spec, chip_count=1, seed=2)
        assert infra.module.config is spec.chip
        assert infra.module.chip_count == 1

    def test_for_spec_defaults_to_full_chip_count(self):
        spec = table1_specs(SMALL_GEOMETRY)[0]
        infra = TestingInfrastructure.for_spec(spec, seed=2)
        assert infra.module.chip_count == spec.chips_per_module

    def test_temperature_cycle_preserves_data(self):
        infra = TestingInfrastructure.for_config(
            sk_hynix_chip().with_geometry(SMALL_GEOMETRY), chip_count=1, seed=3
        )
        bits = np.random.default_rng(0).integers(
            0, 2, infra.module.row_bits, dtype=np.uint8
        )
        infra.host.write_row(0, 9, bits)
        infra.set_temperature(95.0)
        infra.set_temperature(50.0)
        assert np.array_equal(infra.host.read_row(0, 9), bits)

    def test_refresh_through_executor(self):
        infra = TestingInfrastructure.for_config(
            sk_hynix_chip().with_geometry(SMALL_GEOMETRY), chip_count=1, seed=4
        )
        host = infra.host
        bits = np.ones(infra.module.row_bits, dtype=np.uint8)
        host.fill_row(0, 3, bits)
        program = host.new_program("refresh").ref(0)
        result = host.run(program)
        assert result.violations == []
        assert np.array_equal(host.peek_row(0, 3), bits)

    def test_distinct_seeds_give_distinct_modules(self):
        config = sk_hynix_chip().with_geometry(SMALL_GEOMETRY)
        a = TestingInfrastructure.for_config(config, chip_count=1, seed=5)
        b = TestingInfrastructure.for_config(config, chip_count=1, seed=6)
        offsets_a = a.module.chips[0].bank(0).stripes[1].offsets
        offsets_b = b.module.chips[0].bank(0).stripes[1].offsets
        assert not np.array_equal(offsets_a, offsets_b)
