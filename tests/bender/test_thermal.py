"""Tests for the thermal plant and temperature controller."""

import math

import pytest

from repro import SeedTree, sk_hynix_chip
from repro.bender.thermal import TemperatureController, ThermalPlant
from repro.dram.module import Module
from repro.errors import ThermalError, TransientInfrastructureError
from repro.faults import FaultPlan


class TestThermalPlant:
    def test_relaxes_toward_heater(self):
        plant = ThermalPlant(temperature_c=25.0, heater_c=95.0, tau_s=30.0)
        plant.step(30.0)
        expected = 95.0 + (25.0 - 95.0) * math.exp(-1.0)
        assert plant.temperature_c == pytest.approx(expected)

    def test_zero_dt_is_noop(self):
        plant = ThermalPlant(temperature_c=40.0, heater_c=95.0)
        plant.step(0.0)
        assert plant.temperature_c == 40.0

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            ThermalPlant().step(-1.0)

    def test_cooling_works_too(self):
        plant = ThermalPlant(temperature_c=95.0, heater_c=50.0, tau_s=10.0)
        plant.step(100.0)
        assert plant.temperature_c == pytest.approx(50.0, abs=0.01)


class TestController:
    def _controller(self, small_geometry):
        module = Module(
            sk_hynix_chip().with_geometry(small_geometry),
            chip_count=1,
            seed_tree=SeedTree(0),
        )
        return module, TemperatureController(module)

    def test_settles_and_propagates(self, small_geometry):
        module, controller = self._controller(small_geometry)
        controller.set_target(95.0)
        assert controller.temperature_c == 95.0
        assert module.temperature_c == 95.0

    def test_target_sequence(self, small_geometry):
        module, controller = self._controller(small_geometry)
        for target in (50.0, 80.0, 60.0, 95.0):
            controller.set_target(target)
            assert module.temperature_c == target

    def test_out_of_range_target(self, small_geometry):
        _module, controller = self._controller(small_geometry)
        with pytest.raises(ThermalError):
            controller.set_target(200.0)
        with pytest.raises(ThermalError):
            controller.set_target(0.0)

    def test_infrastructure_wires_everything(self, small_geometry):
        from repro.bender.infrastructure import TestingInfrastructure

        infra = TestingInfrastructure.for_config(
            sk_hynix_chip().with_geometry(small_geometry), chip_count=1, seed=3
        )
        infra.set_temperature(70.0)
        assert infra.temperature_c == 70.0
        assert infra.module.temperature_c == 70.0
        assert infra.host.module is infra.module


class TestControllerGuards:
    def _module(self, small_geometry):
        return Module(
            sk_hynix_chip().with_geometry(small_geometry),
            chip_count=1,
            seed_tree=SeedTree(0),
        )

    def test_wall_clock_budget_raises_thermal_error(self, small_geometry):
        # A zero wall-clock budget trips on the first loop iteration even
        # though the setpoint itself is perfectly reachable.
        controller = TemperatureController(
            self._module(small_geometry), wall_timeout_s=0.0
        )
        with pytest.raises(ThermalError, match="wall-clock"):
            controller.set_target(95.0)

    def test_wall_clock_guard_can_be_disabled(self, small_geometry):
        controller = TemperatureController(
            self._module(small_geometry), wall_timeout_s=None
        )
        controller.set_target(95.0)
        assert controller.temperature_c == 95.0

    def test_injected_dropout_is_transient_error(self, small_geometry):
        # Keep the simulated timeout small so the test stays fast; the
        # dropout must surface as a retryable TransientInfrastructureError,
        # not a ThermalError.
        plan = FaultPlan(seed=0, thermal_dropout_rate=1.0)
        controller = TemperatureController(
            self._module(small_geometry),
            timeout_s=60.0,
            fault_injector=plan.injector("spec", "module-0"),
        )
        with pytest.raises(TransientInfrastructureError, match="dropout"):
            controller.set_target(95.0)

    def test_natural_unreachable_setpoint_stays_thermal_error(
        self, small_geometry
    ):
        # Same timeout, no fault plan: a plant that cannot reach the
        # target is a configuration/physics problem, not retryable.
        plant = ThermalPlant(tau_s=1e9)  # effectively frozen
        controller = TemperatureController(
            self._module(small_geometry), plant=plant, timeout_s=60.0
        )
        with pytest.raises(ThermalError, match="failed to settle"):
            controller.set_target(95.0)

    def test_injected_overshoot_settles_and_logs(self, small_geometry):
        plan = FaultPlan(seed=0, thermal_overshoot_rate=1.0)
        injector = plan.injector("spec", "module-0")
        module = self._module(small_geometry)
        controller = TemperatureController(module, fault_injector=injector)
        controller.set_target(80.0)
        # The plateau still snaps to the target; the event is logged.
        assert module.temperature_c == 80.0
        assert injector.count("thermal-overshoot") == 1

    def test_dropout_schedule_is_per_setpoint_deterministic(
        self, small_geometry
    ):
        plan = FaultPlan(seed=5, thermal_dropout_rate=0.5)

        def schedule():
            injector = plan.injector("spec", "module-0")
            return [injector.on_thermal_set(t) for t in (50.0, 70.0, 90.0, 50.0)]

        first = schedule()
        assert first == schedule()
        assert "dropout" in first  # at 50% over 4 draws, seed 5 fires
