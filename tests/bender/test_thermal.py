"""Tests for the thermal plant and temperature controller."""

import math

import pytest

from repro import SeedTree, sk_hynix_chip
from repro.bender.thermal import TemperatureController, ThermalPlant
from repro.dram.module import Module
from repro.errors import ThermalError


class TestThermalPlant:
    def test_relaxes_toward_heater(self):
        plant = ThermalPlant(temperature_c=25.0, heater_c=95.0, tau_s=30.0)
        plant.step(30.0)
        expected = 95.0 + (25.0 - 95.0) * math.exp(-1.0)
        assert plant.temperature_c == pytest.approx(expected)

    def test_zero_dt_is_noop(self):
        plant = ThermalPlant(temperature_c=40.0, heater_c=95.0)
        plant.step(0.0)
        assert plant.temperature_c == 40.0

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            ThermalPlant().step(-1.0)

    def test_cooling_works_too(self):
        plant = ThermalPlant(temperature_c=95.0, heater_c=50.0, tau_s=10.0)
        plant.step(100.0)
        assert plant.temperature_c == pytest.approx(50.0, abs=0.01)


class TestController:
    def _controller(self, small_geometry):
        module = Module(
            sk_hynix_chip().with_geometry(small_geometry),
            chip_count=1,
            seed_tree=SeedTree(0),
        )
        return module, TemperatureController(module)

    def test_settles_and_propagates(self, small_geometry):
        module, controller = self._controller(small_geometry)
        controller.set_target(95.0)
        assert controller.temperature_c == 95.0
        assert module.temperature_c == 95.0

    def test_target_sequence(self, small_geometry):
        module, controller = self._controller(small_geometry)
        for target in (50.0, 80.0, 60.0, 95.0):
            controller.set_target(target)
            assert module.temperature_c == target

    def test_out_of_range_target(self, small_geometry):
        _module, controller = self._controller(small_geometry)
        with pytest.raises(ThermalError):
            controller.set_target(200.0)
        with pytest.raises(ThermalError):
            controller.set_target(0.0)

    def test_infrastructure_wires_everything(self, small_geometry):
        from repro.bender.infrastructure import TestingInfrastructure

        infra = TestingInfrastructure.for_config(
            sk_hynix_chip().with_geometry(small_geometry), chip_count=1, seed=3
        )
        infra.set_temperature(70.0)
        assert infra.temperature_c == 70.0
        assert infra.module.temperature_c == 70.0
        assert infra.host.module is infra.module
