"""Tests for atomic file writes (`repro.atomicio`).

A reader (or a resumed run) must never observe a half-written results
file, report, or checkpoint: writes go to a temp file in the destination
directory and land via ``os.replace``.
"""

import json
import os

import pytest

from repro.atomicio import atomic_write_json, atomic_write_text


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(str(path), "hello\n")
        assert path.read_text() == "hello\n"

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(str(path), "new")
        assert path.read_text() == "new"

    def test_leaves_no_temp_files(self, tmp_path):
        atomic_write_text(str(tmp_path / "out.txt"), "x")
        assert sorted(os.listdir(tmp_path)) == ["out.txt"]

    def test_failed_write_preserves_original(self, tmp_path):
        path = tmp_path / "out.json"
        path.write_text('{"ok": true}')
        with pytest.raises(TypeError):
            # A non-serializable payload fails mid-write; the original
            # file must survive untouched and the temp file must be gone.
            atomic_write_json(str(path), {"bad": object()})
        assert path.read_text() == '{"ok": true}'
        assert sorted(os.listdir(tmp_path)) == ["out.json"]


class TestAtomicWriteJson:
    def test_round_trips_payload(self, tmp_path):
        path = tmp_path / "out.json"
        payload = {"records": [[0, [["a", [0.5, 1.0], 3]]]], "n": 2}
        atomic_write_json(str(path), payload)
        assert json.loads(path.read_text()) == payload

    def test_floats_round_trip_exactly(self, tmp_path):
        # The checkpoint bit-identity guarantee rests on this: Python's
        # repr-based JSON floats reparse to the identical double.
        path = tmp_path / "out.json"
        values = [0.1 + 0.2, 1.0 / 3.0, 1e-308, 2**53 + 1.0]
        atomic_write_json(str(path), values)
        assert json.loads(path.read_text()) == values
