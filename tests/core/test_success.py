"""Tests for the success-rate measurement machinery.

Measurement construction goes through the ``backend`` fixture
(:class:`~repro.substrate.SubstrateBackend`; parameterized over the
analog reference and trace-verify), so every run-level assertion here
also pins the substrate interface.  Tests that reach into analog-only
internals (``.operation``, operand drawing) construct measurements
directly instead.
"""

import numpy as np
import pytest

from repro.core.addressing import find_pattern_pair
from repro.core.success import (
    LogicSuccessMeasurement,
    NotSuccessMeasurement,
    SuccessResult,
)
from repro.dram.decoder import ActivationKind


def not_pair(host, n=1, seed=0):
    return find_pattern_pair(
        host.module.decoder,
        host.module.config.geometry,
        0, 0, 1, n, ActivationKind.N_TO_N, seed=seed,
    )


def logic_pair(host, n=4, seed=0):
    return find_pattern_pair(
        host.module.decoder,
        host.module.config.geometry,
        0, 2, 3, n, ActivationKind.N_TO_N, seed=seed,
    )


def not_measurement(host, backend, n=1, seed=0):
    src, dst = not_pair(host, n=n, seed=seed)
    return backend.not_measurement_at(host, 0, src, dst)


def logic_measurement(host, backend, base_op="and", n=4, seed=0):
    ref, com = logic_pair(host, n=n, seed=seed)
    return backend.logic_measurement_at(host, 0, ref, com, base_op=base_op)


class TestSuccessResult:
    def test_rates_and_mean(self):
        result = SuccessResult(np.array([[5, 10], [0, 10]]), trials=10)
        assert result.rates.tolist() == [[0.5, 1.0], [0.0, 1.0]]
        assert result.mean_rate == pytest.approx(0.625)
        assert result.flat_rates().shape == (4,)

    def test_zero_trials_rejected(self):
        result = SuccessResult(np.zeros((1, 1)), trials=0)
        with pytest.raises(ValueError):
            _ = result.rates


class TestNotSuccess:
    def test_ideal_chip_is_perfect(self, ideal_host, backend):
        measurement = not_measurement(ideal_host, backend)
        result = measurement.run(20, np.random.default_rng(0))
        assert result.mean_rate == 1.0
        assert result.metadata["operation"] == "not"
        assert result.metadata["n_destination_rows"] == 1

    def test_counts_shape(self, ideal_host, backend):
        measurement = not_measurement(ideal_host, backend, n=4, seed=4)
        result = measurement.run(5, np.random.default_rng(0))
        assert measurement.n_destination_rows == 4
        assert result.success_counts.shape[0] == 4
        assert result.trials == 5

    def test_shared_column_count(self, ideal_host):
        src, dst = not_pair(ideal_host, n=4, seed=4)
        measurement = NotSuccessMeasurement(ideal_host, 0, src, dst)
        result = measurement.run(5, np.random.default_rng(0))
        shared = measurement.operation.shared_columns.size
        assert result.success_counts.shape == (4, shared)

    def test_real_chip_single_destination_high(self, real_host, backend):
        measurement = not_measurement(real_host, backend)
        result = measurement.run(120, np.random.default_rng(1))
        assert 0.80 < result.mean_rate <= 1.0

    def test_real_chip_degrades_with_destinations(self, real_host, backend):
        few = not_measurement(real_host, backend, n=1).run(
            100, np.random.default_rng(2)
        )
        many = not_measurement(real_host, backend, n=16, seed=16).run(
            100, np.random.default_rng(2)
        )
        assert many.mean_rate < few.mean_rate

    def test_deterministic_given_rng(self, real_host, real_module, backend):
        a = not_measurement(real_host, backend).run(30, np.random.default_rng(7))
        # Fresh module, same seeds -> identical counts.
        from repro import SeedTree
        from repro.bender import DramBenderHost
        from repro.dram.module import Module

        module = Module(
            real_module.config, chip_count=1, seed_tree=SeedTree(7)
        )
        host = DramBenderHost(module)
        b = not_measurement(host, backend).run(30, np.random.default_rng(7))
        assert np.array_equal(a.success_counts, b.success_counts)

    def test_rejects_zero_trials(self, ideal_host, backend):
        with pytest.raises(ValueError):
            not_measurement(ideal_host, backend).run(0, np.random.default_rng(0))


class TestLogicSuccess:
    def test_ideal_chip_is_perfect_both_terminals(self, ideal_host, backend):
        measurement = logic_measurement(ideal_host, backend)
        pair = measurement.run(15, np.random.default_rng(0))
        assert pair.primary.mean_rate == 1.0
        assert pair.complement.mean_rate == 1.0
        assert pair.primary.metadata["operation"] == "and"
        assert pair.complement.metadata["operation"] == "nand"

    def test_or_pair_names(self, ideal_host, backend):
        measurement = logic_measurement(ideal_host, backend, base_op="or", seed=1)
        pair = measurement.run(5, np.random.default_rng(0))
        assert pair.primary.metadata["operation"] == "or"
        assert pair.complement.metadata["operation"] == "nor"

    def test_invalid_base_op(self, ideal_host, backend):
        with pytest.raises(ValueError):
            logic_measurement(ideal_host, backend, base_op="nand")

    def test_all01_mode_uses_constant_rows(self, ideal_host):
        ref, com = logic_pair(ideal_host, seed=2)
        measurement = LogicSuccessMeasurement(ideal_host, 0, ref, com)
        operands = measurement._draw_operands(
            np.random.default_rng(0), "all01", None
        )
        for operand in operands:
            assert np.all(operand == operand[0])

    def test_ones_count_mode_exact(self, ideal_host):
        ref, com = logic_pair(ideal_host, seed=3)
        measurement = LogicSuccessMeasurement(ideal_host, 0, ref, com)
        operands = measurement._draw_operands(
            np.random.default_rng(0), "ones_count", 3
        )
        constant_bits = [int(o[0]) for o in operands]
        assert sum(constant_bits) == 3

    def test_ones_count_requires_valid_k(self, ideal_host, backend):
        measurement = logic_measurement(ideal_host, backend, seed=4)
        with pytest.raises(ValueError):
            measurement.run(
                1, np.random.default_rng(0), mode="ones_count", ones_count=99
            )

    def test_unknown_mode(self, ideal_host, backend):
        measurement = logic_measurement(ideal_host, backend, seed=5)
        with pytest.raises(ValueError):
            measurement.run(1, np.random.default_rng(0), mode="sparse")

    def test_real_chip_and_nand_close(self, real_host, backend):
        # Observation 13 at measurement level.
        measurement = logic_measurement(real_host, backend, n=8, seed=6)
        pair = measurement.run(150, np.random.default_rng(1))
        assert pair.primary.mean_rate == pytest.approx(
            pair.complement.mean_rate, abs=0.05
        )

    def test_real_chip_and_worst_pattern_is_harder(self, real_host, backend):
        measurement = logic_measurement(real_host, backend, n=4, seed=7)
        rng = np.random.default_rng(2)
        easy = measurement.run(120, rng, mode="ones_count", ones_count=0)
        rng = np.random.default_rng(2)
        hard = measurement.run(120, rng, mode="ones_count", ones_count=3)
        assert hard.primary.mean_rate < easy.primary.mean_rate
