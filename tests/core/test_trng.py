"""Tests for the multi-row-activation true random number generator."""

import numpy as np
import pytest

from repro.core.trng import (
    DramTrng,
    TrngQuality,
    assess_quality,
    von_neumann_extract,
)


@pytest.fixture()
def trng(real_host):
    return DramTrng(real_host, bank=0, subarray=2, block_local_row=40)


class TestVonNeumann:
    def test_extraction_rule(self):
        first = np.array([0, 1, 0, 1], dtype=np.uint8)
        second = np.array([0, 0, 1, 1], dtype=np.uint8)
        # pairs: 00 drop, 10 -> 0, 01 -> 1, 11 drop
        assert von_neumann_extract(first, second).tolist() == [0, 1]

    def test_constant_stream_yields_nothing(self):
        ones = np.ones(100, dtype=np.uint8)
        assert von_neumann_extract(ones, ones).size == 0

    def test_removes_bias(self):
        rng = np.random.default_rng(0)
        first = (rng.random(40000) < 0.8).astype(np.uint8)
        second = (rng.random(40000) < 0.8).astype(np.uint8)
        extracted = von_neumann_extract(first, second)
        assert extracted.mean() == pytest.approx(0.5, abs=0.02)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            von_neumann_extract(np.zeros(3), np.zeros(4))


class TestQuality:
    def test_good_stream_passes(self):
        bits = np.random.default_rng(1).integers(0, 2, 10000)
        assert assess_quality(bits).looks_random

    def test_constant_stream_fails(self):
        quality = assess_quality(np.ones(10000, dtype=np.uint8))
        assert not quality.looks_random
        assert quality.longest_run == 10000

    def test_alternating_stream_fails_serial_correlation(self):
        bits = np.tile([0, 1], 5000)
        quality = assess_quality(bits)
        assert quality.serial_correlation == pytest.approx(-1.0)
        assert not quality.looks_random

    def test_short_stream_fails(self):
        assert not assess_quality(np.array([0, 1, 0])).looks_random

    def test_empty_stream(self):
        assert assess_quality(np.array([])).bit_count == 0


class TestDramTrng:
    def test_generates_requested_count(self, trng):
        bits = trng.random_bits(500)
        assert bits.shape == (500,)
        assert set(np.unique(bits)) <= {0, 1}

    def test_debiased_stream_looks_random(self, trng):
        quality = assess_quality(trng.random_bits(2000))
        assert quality.looks_random, quality

    def test_raw_stream_is_biased_per_column(self, real_host):
        # Per-column sense-amplifier offsets pin some columns: the raw
        # stream has longer runs than the debiased one.
        trng = DramTrng(real_host, bank=0, subarray=2, block_local_row=40)
        raw_quality = assess_quality(trng.raw_bits(3000))
        debiased_quality = assess_quality(trng.random_bits(1500))
        assert raw_quality.longest_run > debiased_quality.longest_run

    def test_random_bytes(self, trng):
        data = trng.random_bytes(16)
        assert len(data) == 16
        assert len(set(data)) > 1

    def test_throughput_accounting(self, trng):
        trng.raw_bits(100)
        assert trng.raw_bits_generated >= 100

    def test_two_generators_disagree(self, real_host):
        a = DramTrng(real_host, bank=0, subarray=2, block_local_row=40)
        b = DramTrng(real_host, bank=0, subarray=2, block_local_row=80)
        assert not np.array_equal(a.random_bits(400), b.random_bits(400))

    def test_rejects_unaligned_block(self, real_host):
        with pytest.raises(ValueError):
            DramTrng(real_host, bank=0, subarray=2, block_local_row=41)

    def test_rejects_zero_count(self, trng):
        with pytest.raises(ValueError):
            trng.raw_bits(0)

    def test_ideal_die_has_no_entropy_source(self, ideal_host):
        # With zero noise the conflict resolves deterministically — the
        # entropy comes from the physical noise, not the mechanism.
        trng = DramTrng(ideal_host, bank=0, subarray=2, block_local_row=40, debias=False)
        first = trng.raw_bits(128)
        second = trng.raw_bits(128)
        assert np.array_equal(first, second)
