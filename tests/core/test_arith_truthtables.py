"""Truth-table regression tests for the bit-serial ALU.

Exhaustive (or corner-plus-random, where exhaustive is infeasible)
add/subtract tables at widths 2, 4, and 8, repeated on every DDR4 speed
grade the calibration layer models.  The hosts use the ideal
calibration, so these are *functional* tables: a wrong bit anywhere is
an ALU logic bug, not noise — and the speed-grade parameterization pins
that per-grade calibration deltas can never leak into what the
operations compute.

Operand pairs are packed across the ALU's SIMD lanes, so a full
width-4 table (256 pairs) costs only a handful of ripple-carry calls.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import SeedTree, ideal_calibration, sk_hynix_chip
from repro.bender import DramBenderHost
from repro.core.arith import BitSerialAlu, from_bit_slices, to_bit_slices
from repro.dram.module import Module

#: Every DDR4 speed grade in the calibration tables.
SPEED_GRADES = (2133, 2400, 2666, 3200)

WIDTHS = (2, 4, 8)


@pytest.fixture(scope="module", params=SPEED_GRADES)
def speed_alu(request, small_geometry):
    config = sk_hynix_chip(speed_rate_mts=request.param).with_geometry(
        small_geometry
    )
    module = Module(
        config, chip_count=1, seed_tree=SeedTree(7),
        calibration=ideal_calibration(),
    )
    return BitSerialAlu(
        DramBenderHost(module), bank=0, subarray_pair=(0, 1), maj_subarray=2
    )


def operand_pairs(width):
    """The (a, b) table for a width: exhaustive up to 4 bits, corner
    values crossed plus 64 seeded random pairs at 8."""
    if width <= 4:
        values = np.arange(1 << width)
        a, b = np.meshgrid(values, values)
        return a.ravel(), b.ravel()
    top = 1 << width
    corners = np.array([0, 1, top // 2 - 1, top // 2, top - 2, top - 1])
    a, b = np.meshgrid(corners, corners)
    rng = np.random.default_rng(width)
    return (
        np.concatenate([a.ravel(), rng.integers(0, top, 64)]),
        np.concatenate([b.ravel(), rng.integers(0, top, 64)]),
    )


def run_lanewise(alu, op, a_values, b_values, width):
    """Apply a two-operand ALU op to every pair, packed across lanes."""
    outputs = []
    lanes = alu.lanes
    for start in range(0, len(a_values), lanes):
        chunk_a = a_values[start : start + lanes]
        chunk_b = b_values[start : start + lanes]
        padded_a = np.zeros(lanes, dtype=np.int64)
        padded_b = np.zeros(lanes, dtype=np.int64)
        padded_a[: len(chunk_a)] = chunk_a
        padded_b[: len(chunk_b)] = chunk_b
        result = op(
            to_bit_slices(padded_a, width), to_bit_slices(padded_b, width)
        )
        outputs.append(from_bit_slices(result)[: len(chunk_a)])
    return np.concatenate(outputs)


class TestAddTruthTables:
    @pytest.mark.parametrize("width", WIDTHS)
    def test_add_matches_integer_addition(self, speed_alu, width):
        a, b = operand_pairs(width)
        # The carry-out slice makes the result exact, not modular.
        total = run_lanewise(speed_alu, speed_alu.add, a, b, width)
        assert np.array_equal(total, a + b)


class TestSubtractTruthTables:
    @pytest.mark.parametrize("width", WIDTHS)
    def test_subtract_matches_modular_subtraction(self, speed_alu, width):
        a, b = operand_pairs(width)
        diff = run_lanewise(speed_alu, speed_alu.subtract, a, b, width)
        assert np.array_equal(diff, (a - b) % (1 << width))
