"""Tests for the Boolean-expression compiler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitwise import BitwiseAccelerator
from repro.core.compiler import (
    And,
    Not,
    Or,
    Step,
    Var,
    Xor,
    compile_expression,
    v,
)
from repro.errors import ReproError

NAMES = ("a", "b", "c", "d")


@pytest.fixture()
def accelerator(ideal_host):
    return BitwiseAccelerator(ideal_host, bank=0, subarray_pair=(0, 1))


def bindings_for(accelerator, seed=0):
    rng = np.random.default_rng(seed)
    return {
        name: rng.integers(0, 2, accelerator.vector_width, dtype=np.uint8)
        for name in NAMES
    }


# Recursive random expressions over four variables.
expressions = st.recursive(
    st.sampled_from([v(name) for name in NAMES]),
    lambda children: st.one_of(
        st.builds(Not, children),
        st.builds(lambda a, b: And(a, b), children, children),
        st.builds(lambda a, b: Or(a, b), children, children),
        st.builds(Xor, children, children),
    ),
    max_leaves=8,
)


class TestCompilation:
    def test_bare_variable(self, accelerator):
        program = compile_expression(v("a"))
        assert program.total_ops == 0
        values = bindings_for(accelerator)
        assert np.array_equal(program.run(accelerator, values), values["a"])

    def test_fanin_fusion(self):
        expr = And(And(v("a"), v("b")), And(v("c"), v("d")))
        program = compile_expression(expr)
        # One 4-input AND instead of three 2-input ANDs.
        assert program.steps == [Step("and", ("a", "b", "c", "d"))]

    def test_complement_fusion(self):
        program = compile_expression(Not(And(v("a"), v("b"))))
        assert program.steps == [Step("nand", ("a", "b"))]
        program = compile_expression(Not(Or(v("a"), v("b"))))
        assert program.steps == [Step("nor", ("a", "b"))]

    def test_double_negation_cancels(self):
        program = compile_expression(Not(Not(And(v("a"), v("b")))))
        assert program.steps == [Step("and", ("a", "b"))]

    def test_xor_desugars_to_three_ops(self):
        program = compile_expression(Xor(v("a"), v("b")))
        assert program.op_counts == {"or": 1, "nand": 1, "and": 1}

    def test_fusion_respects_fanin_cap(self):
        expr = v("a")
        for _ in range(20):
            expr = And(expr, v("b"))
        program = compile_expression(expr)
        # Must be split into several ops, none wider than 16 inputs.
        assert all(len(step.inputs) <= 16 for step in program.steps)
        assert program.total_ops >= 2

    def test_variables_collected_in_order(self):
        program = compile_expression(Or(v("c"), And(v("a"), v("c"))))
        assert program.variables == ("c", "a")

    def test_nary_needs_two_children(self):
        with pytest.raises(ReproError):
            And(v("a"))


class TestExecution:
    def test_known_expression(self, accelerator):
        expr = Or(And(v("a"), v("b")), Not(v("c")))
        program = compile_expression(expr)
        values = bindings_for(accelerator, seed=1)
        result = program.run(accelerator, values)
        expected = (values["a"] & values["b"]) | (1 - values["c"])
        assert np.array_equal(result, expected)

    def test_unbound_variable_rejected(self, accelerator):
        program = compile_expression(And(v("a"), v("zzz")))
        with pytest.raises(ReproError):
            program.run(accelerator, bindings_for(accelerator))

    #: Hand-picked structurally diverse expressions (full property
    #: exploration on the simulated chip would be too slow).
    SHAPES = [
        Xor(And(v("a"), v("b")), Or(v("c"), v("d"))),
        Not(Or(Not(v("a")), And(v("b"), v("c"), v("d")))),
        And(Or(v("a"), v("b")), Or(v("c"), v("d")), Not(v("a"))),
        Or(Xor(v("a"), v("b")), Xor(v("c"), v("d"))),
        Not(Not(Xor(v("a"), Not(v("b"))))),
    ]

    @pytest.mark.parametrize("index", range(len(SHAPES)))
    def test_random_expressions_match_reference(self, accelerator, index):
        expr = self.SHAPES[index]
        program = compile_expression(expr)
        values = bindings_for(accelerator, seed=index)
        in_dram = program.run(accelerator, values)
        reference = expr.evaluate(values)
        assert np.array_equal(in_dram, reference)

    @given(expr=expressions)
    @settings(max_examples=200, deadline=None)
    def test_compiled_schedule_is_well_formed(self, expr):
        # Pure-compilation property: every step only references earlier
        # steps or declared variables, and the last step is the output.
        program = compile_expression(expr)
        for index, step in enumerate(program.steps):
            for ref in step.inputs:
                if isinstance(ref, int):
                    assert 0 <= ref < index
                else:
                    assert ref in program.variables
            assert len(step.inputs) <= 16

    @given(expr=expressions, seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=150, deadline=None)
    def test_simplification_preserves_semantics(self, expr, seed):
        # CPU-side check that the optimizer never changes meaning.
        rng = np.random.default_rng(seed)
        values = {
            name: rng.integers(0, 2, 16, dtype=np.uint8) for name in NAMES
        }
        from repro.core.compiler import _desugar, _simplify

        original = _desugar(expr).evaluate(values)
        simplified = _simplify(_desugar(expr)).evaluate(values)
        assert np.array_equal(original, simplified)


class TestEquivalenceProof:
    """Every lowering path carries a machine-checked truth-table proof."""

    CATALOGUE = [
        ("fan-in fusion", And(And(v("a"), v("b")), And(v("c"), v("d")))),
        ("complement fusion nand", Not(And(v("a"), v("b"), v("c")))),
        ("complement fusion nor", Not(Or(v("a"), v("b"), v("c")))),
        ("double negation", Not(Not(Or(v("a"), v("b"))))),
        ("xor desugar", Xor(v("a"), v("b"))),
        (
            "shared subexpression",
            Or(And(v("a"), v("b")), Xor(And(v("a"), v("b")), v("c"))),
        ),
    ]

    @pytest.mark.parametrize("label,expr", CATALOGUE)
    def test_proof_matches_source_truth_table(self, label, expr):
        from repro.core.compiler import _assignment_columns
        from repro.staticcheck.semantics import table_from_outputs

        program = compile_expression(expr)
        assert program.proof is not None, label
        names = program.variables
        bindings = _assignment_columns(names, 1 << len(names))
        expected = table_from_outputs(
            names, np.asarray(expr.evaluate(bindings), dtype=np.uint8)
        )
        assert program.proof == expected, label

    def test_bare_variable_proof(self):
        from repro.staticcheck.semantics import sym_var

        assert compile_expression(v("a")).proof == sym_var("a")

    def test_wide_expressions_use_sampled_proof(self):
        # Beyond the 16-variable exhaustive cap the proof is a seeded
        # sampled equivalence; no truth-table object rides along.
        wide = And(*[v(f"x{i}") for i in range(20)])
        program = compile_expression(wide)
        assert program.proof is None
        assert all(len(step.inputs) <= 16 for step in program.steps)

    def test_cse_emits_shared_subexpression_once(self):
        shared = And(v("a"), v("b"))
        program = compile_expression(Or(shared, Xor(shared, v("c"))))
        # Without CSE the shared AND would be lowered three times (once
        # bare, twice inside the XOR desugaring).
        assert program.op_counts["and"] == 2  # shared + the XOR's own AND

    def test_terminal_swap_is_rejected(self):
        from repro.core.compiler import CompiledExpression, _prove_equivalence
        from repro.errors import ProgramVerificationError

        swapped = CompiledExpression(variables=("a", "b"))
        swapped.steps.append(Step("nor", ("a", "b")))
        with pytest.raises(ProgramVerificationError) as exc:
            _prove_equivalence(Not(And(v("a"), v("b"))), swapped)
        assert any(d.rule == "SEM301" for d in exc.value.diagnostics)

    def test_dropped_negation_is_rejected(self):
        from repro.core.compiler import CompiledExpression, _prove_equivalence
        from repro.errors import ProgramVerificationError

        dropped = CompiledExpression(variables=("a", "b"))
        dropped.steps.append(Step("and", ("a", "b")))
        with pytest.raises(ProgramVerificationError):
            _prove_equivalence(Not(And(v("a"), v("b"))), dropped)

    def test_sampled_path_catches_mutations_too(self):
        from repro.core.compiler import _prove_equivalence
        from repro.errors import ProgramVerificationError

        wide = And(*[v(f"x{i}") for i in range(20)])
        program = compile_expression(wide, verify=False)
        last = program.steps[-1]
        program.steps[-1] = Step("or", last.inputs)
        with pytest.raises(ProgramVerificationError):
            _prove_equivalence(wide, program)

    def test_mutated_lowering_rejected_through_compile(self, monkeypatch):
        import repro.core.compiler as compiler
        from repro.errors import ProgramVerificationError

        original = compiler._emit

        def swap_terminals(expr, program, memo):
            ref = original(expr, program, memo)
            program.steps[:] = [
                Step("nor", s.inputs) if s.op == "nand" else s
                for s in program.steps
            ]
            return ref

        monkeypatch.setattr(compiler, "_emit", swap_terminals)
        with pytest.raises(ProgramVerificationError) as exc:
            compiler.compile_expression(Not(And(v("a"), v("b"))))
        assert any(d.rule == "SEM301" for d in exc.value.diagnostics)

    def test_docstring_examples_are_doctests(self):
        import doctest

        import repro.core.compiler as compiler

        results = doctest.testmod(compiler)
        assert results.failed == 0
        assert results.attempted >= 8


class TestParseExpression:
    def test_precedence_and_parens(self):
        from repro.core.compiler import parse_expression

        loose = compile_expression(parse_expression("a | b & c"))
        tight = compile_expression(parse_expression("(a | b) & c"))
        assert loose.proof == compile_expression(Or(v("a"), And(v("b"), v("c")))).proof
        assert tight.proof == compile_expression(And(Or(v("a"), v("b")), v("c"))).proof
        assert loose.proof != tight.proof

    def test_negation_and_xor(self):
        from repro.core.compiler import parse_expression

        program = compile_expression(parse_expression("~(a & b) ^ c"))
        reference = compile_expression(Xor(Not(And(v("a"), v("b"))), v("c")))
        assert program.proof == reference.proof

    def test_rejects_garbage(self):
        from repro.core.compiler import parse_expression

        with pytest.raises(ReproError):
            parse_expression("a &")
        with pytest.raises(ReproError):
            parse_expression("")
        with pytest.raises(ReproError):
            parse_expression("(a | b")
