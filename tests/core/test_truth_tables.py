"""Exhaustive truth-table tests for the in-DRAM logic primitives.

Each N-input operation is exercised over *all* 2^N input combinations by
packing one combination per shared column (the sense-amplifier stripe
serves every column in parallel, so one execution evaluates as many
truth-table rows as there are shared columns).  On the ideal-calibration
chip every cell is good, so the readback must match NumPy reference
semantics bit for bit.
"""

import numpy as np
import pytest

from repro.core.addressing import find_pattern_pair
from repro.core.logic import LogicOperation, ideal_output
from repro.core.not_op import NotOperation
from repro.dram.decoder import ActivationKind


def find_pair(host, n, kind=ActivationKind.N_TO_N, seed=0, subarrays=(0, 1)):
    return find_pattern_pair(
        host.module.decoder,
        host.module.config.geometry,
        0,
        subarrays[0],
        subarrays[1],
        n,
        kind,
        seed=seed,
    )


def all_combinations(n_inputs):
    """All 2^n input combinations, one per column: shape (n, 2^n)."""
    count = 1 << n_inputs
    columns = np.arange(count, dtype=np.uint32)
    return np.array(
        [(columns >> bit) & 1 for bit in range(n_inputs)], dtype=np.uint8
    )


def numpy_reference(op, table):
    """Reference semantics over a (n_inputs, combos) bit table."""
    if op in ("and", "nand"):
        result = table.all(axis=0)
    else:
        result = table.any(axis=0)
    if op in ("nand", "nor"):
        result = ~result
    return result.astype(np.uint8)


class TestLogicTruthTables:
    @pytest.mark.parametrize("op", ["and", "or", "nand", "nor"])
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_exhaustive_truth_table(self, ideal_host, op, n):
        ref_row, com_row = find_pair(ideal_host, n, seed=n)
        operation = LogicOperation(ideal_host, 0, ref_row, com_row, op=op)
        assert operation.n_inputs == n

        shared = operation.shared_columns
        table = all_combinations(n)
        expected = numpy_reference(op, table)
        width = ideal_host.module.row_bits

        # Evaluate the full table in slabs of len(shared) columns.
        for start in range(0, table.shape[1], shared.size):
            slab = table[:, start : start + shared.size]
            operands = []
            for bits in slab:
                row = np.zeros(width, dtype=np.uint8)
                row[shared[: bits.size]] = bits
                operands.append(row)
            outcome = operation.run(operands)
            got = outcome.result[: slab.shape[1]]
            assert np.array_equal(got, expected[start : start + slab.shape[1]]), (
                f"{op} n={n} combinations {start}..{start + slab.shape[1]}"
            )
            # Cross-check against ideal_output on the same operand columns.
            reference = ideal_output(op, [o[shared] for o in operands])
            assert np.array_equal(outcome.result, reference)

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_and_or_are_duals(self, ideal_host, n):
        # De Morgan on the reference model itself, over the full table.
        table = all_combinations(n)
        assert np.array_equal(
            numpy_reference("nand", table), numpy_reference("or", 1 - table)
        )
        assert np.array_equal(
            numpy_reference("nor", table), numpy_reference("and", 1 - table)
        )


class TestNotInversion:
    @pytest.mark.parametrize(
        "n_destination,kind",
        [
            (1, ActivationKind.N_TO_N),
            (2, ActivationKind.N_TO_N),
            (4, ActivationKind.N_TO_N),
            (8, ActivationKind.N_TO_N),
            (16, ActivationKind.N_TO_N),
            (2, ActivationKind.N_TO_2N),
            (8, ActivationKind.N_TO_2N),
            (32, ActivationKind.N_TO_2N),
        ],
    )
    def test_inversion_across_destination_rows(
        self, ideal_host, rng, n_destination, kind
    ):
        n_first = (
            n_destination
            if kind is ActivationKind.N_TO_N
            else n_destination // 2
        )
        src, dst = find_pair(ideal_host, n_first, kind=kind, seed=n_destination)
        operation = NotOperation(ideal_host, 0, src, dst)
        assert len(operation.destination_rows()) == n_destination

        for trial in range(3):
            bits = rng.integers(0, 2, ideal_host.module.row_bits, dtype=np.uint8)
            outcome = operation.run(bits)
            expected = 1 - bits[operation.shared_columns]
            assert len(outcome.outputs) == n_destination
            for row, result in outcome.outputs.items():
                assert np.array_equal(result, expected), (
                    f"{n_destination} destinations, trial {trial}, row {row}"
                )

    def test_alternating_and_constant_patterns(self, ideal_host):
        src, dst = find_pair(ideal_host, 4, seed=7)
        operation = NotOperation(ideal_host, 0, src, dst)
        width = ideal_host.module.row_bits
        for pattern in (
            np.zeros(width, dtype=np.uint8),
            np.ones(width, dtype=np.uint8),
            np.tile(np.array([0, 1], dtype=np.uint8), width // 2),
            np.tile(np.array([1, 0], dtype=np.uint8), width // 2),
        ):
            outcome = operation.run(pattern)
            expected = 1 - pattern[operation.shared_columns]
            for result in outcome.outputs.values():
                assert np.array_equal(result, expected)
