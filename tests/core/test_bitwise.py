"""Tests for the bulk bitwise accelerator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitwise import BitwiseAccelerator
from repro.errors import UnsupportedOperationError


@pytest.fixture()
def accelerator(ideal_host):
    return BitwiseAccelerator(ideal_host, bank=0, subarray_pair=(0, 1))


def vectors(accelerator, count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 2, accelerator.vector_width, dtype=np.uint8)
        for _ in range(count)
    ]


class TestBaseOps:
    def test_vector_width_is_half_row(self, accelerator, ideal_host):
        assert accelerator.vector_width == ideal_host.module.row_bits // 2

    def test_and(self, accelerator):
        a, b = vectors(accelerator, 2, seed=1)
        assert np.array_equal(accelerator.and_(a, b), a & b)

    def test_or(self, accelerator):
        a, b = vectors(accelerator, 2, seed=2)
        assert np.array_equal(accelerator.or_(a, b), a | b)

    def test_nand(self, accelerator):
        a, b = vectors(accelerator, 2, seed=3)
        assert np.array_equal(accelerator.nand(a, b), 1 - (a & b))

    def test_nor(self, accelerator):
        a, b = vectors(accelerator, 2, seed=4)
        assert np.array_equal(accelerator.nor(a, b), 1 - (a | b))

    def test_not(self, accelerator):
        (a,) = vectors(accelerator, 1, seed=5)
        assert np.array_equal(accelerator.not_(a), 1 - a)

    @pytest.mark.parametrize("count", [3, 5, 9, 16])
    def test_many_input_and_padding(self, accelerator, count):
        operands = vectors(accelerator, count, seed=count)
        expected = operands[0].copy()
        for operand in operands[1:]:
            expected &= operand
        assert np.array_equal(accelerator.and_(*operands), expected)

    @pytest.mark.parametrize("count", [3, 7, 12])
    def test_many_input_or_padding(self, accelerator, count):
        operands = vectors(accelerator, count, seed=10 + count)
        expected = operands[0].copy()
        for operand in operands[1:]:
            expected |= operand
        assert np.array_equal(accelerator.or_(*operands), expected)

    def test_too_many_operands(self, accelerator):
        with pytest.raises(UnsupportedOperationError):
            accelerator.and_(*vectors(accelerator, 17))

    def test_too_few_operands(self, accelerator):
        with pytest.raises(ValueError):
            accelerator.and_(vectors(accelerator, 1)[0])

    def test_wrong_width_rejected(self, accelerator):
        with pytest.raises(ValueError):
            accelerator.and_(np.zeros(3, dtype=np.uint8), np.zeros(3, dtype=np.uint8))


class TestComposedOps:
    def test_xor(self, accelerator):
        a, b = vectors(accelerator, 2, seed=6)
        assert np.array_equal(accelerator.xor(a, b), a ^ b)

    def test_xnor(self, accelerator):
        a, b = vectors(accelerator, 2, seed=7)
        assert np.array_equal(accelerator.xnor(a, b), 1 - (a ^ b))

    @pytest.mark.parametrize("seed", [0, 17, 91, 2024, 65535])
    def test_xor_property(self, seed, ideal_host):
        accelerator = BitwiseAccelerator(ideal_host, bank=0, subarray_pair=(0, 1))
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 2, accelerator.vector_width, dtype=np.uint8)
        b = rng.integers(0, 2, accelerator.vector_width, dtype=np.uint8)
        assert np.array_equal(accelerator.xor(a, b), a ^ b)

    def test_pair_discovery_cached(self, accelerator):
        a, b = vectors(accelerator, 2, seed=8)
        accelerator.and_(a, b)
        pair_first = accelerator._logic_pairs[2]
        accelerator.and_(a, b)
        assert accelerator._logic_pairs[2] == pair_first
