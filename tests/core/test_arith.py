"""Tests for bit-serial in-DRAM integer arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arith import BitSerialAlu, from_bit_slices, to_bit_slices

WIDTH = 6


@pytest.fixture()
def alu(ideal_host):
    return BitSerialAlu(ideal_host, bank=0, subarray_pair=(0, 1), maj_subarray=2)


def lanes_of(alu, rng, width=WIDTH):
    return rng.integers(0, 1 << width, alu.lanes)


class TestBitSlicing:
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=32))
    def test_round_trip(self, values):
        values = np.array(values)
        assert np.array_equal(from_bit_slices(to_bit_slices(values, 8)), values)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            to_bit_slices(np.array([256]), 8)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            to_bit_slices(np.array([-1]), 8)

    def test_shape(self):
        slices = to_bit_slices(np.array([1, 2, 3]), 4)
        assert slices.shape == (4, 3)


class TestAdd:
    def test_vectorized_addition(self, alu):
        rng = np.random.default_rng(0)
        a, b = lanes_of(alu, rng), lanes_of(alu, rng)
        total = alu.add(to_bit_slices(a, WIDTH), to_bit_slices(b, WIDTH))
        assert total.shape == (WIDTH + 1, alu.lanes)
        assert np.array_equal(from_bit_slices(total), a + b)

    def test_carry_out(self, alu):
        full = np.full(alu.lanes, (1 << WIDTH) - 1)
        one = np.ones(alu.lanes, dtype=np.int64)
        total = alu.add(to_bit_slices(full, WIDTH), to_bit_slices(one, WIDTH))
        assert np.all(total[WIDTH] == 1)  # overflow into the carry bit

    def test_carry_in(self, alu):
        zero = np.zeros(alu.lanes, dtype=np.int64)
        total = alu.add(
            to_bit_slices(zero, WIDTH),
            to_bit_slices(zero, WIDTH),
            carry_in=np.ones(alu.lanes, dtype=np.uint8),
        )
        assert np.array_equal(from_bit_slices(total), zero + 1)

    def test_width_mismatch(self, alu):
        with pytest.raises(ValueError):
            alu.add(
                np.zeros((4, alu.lanes), dtype=np.uint8),
                np.zeros((5, alu.lanes), dtype=np.uint8),
            )

    def test_lane_mismatch(self, alu):
        with pytest.raises(ValueError):
            alu.add(np.zeros((4, 3), dtype=np.uint8), np.zeros((4, 3), dtype=np.uint8))


class TestSubtractCompare:
    def test_subtract(self, alu):
        rng = np.random.default_rng(1)
        a, b = lanes_of(alu, rng), lanes_of(alu, rng)
        result = alu.subtract(to_bit_slices(a, WIDTH), to_bit_slices(b, WIDTH))
        expected = (a - b) % (1 << WIDTH)
        assert np.array_equal(from_bit_slices(result), expected)

    def test_negate(self, alu):
        rng = np.random.default_rng(2)
        a = lanes_of(alu, rng)
        result = alu.negate(to_bit_slices(a, WIDTH))
        expected = (-a) % (1 << WIDTH)
        assert np.array_equal(from_bit_slices(result), expected)

    def test_less_than(self, alu):
        rng = np.random.default_rng(3)
        a, b = lanes_of(alu, rng), lanes_of(alu, rng)
        flags = alu.less_than(to_bit_slices(a, WIDTH), to_bit_slices(b, WIDTH))
        assert np.array_equal(flags, (a < b).astype(np.uint8))

    def test_equals(self, alu):
        rng = np.random.default_rng(4)
        a = lanes_of(alu, rng)
        b = a.copy()
        flip = rng.random(alu.lanes) < 0.5
        b[flip] = (b[flip] + 1) % (1 << WIDTH)
        flags = alu.equals(to_bit_slices(a, WIDTH), to_bit_slices(b, WIDTH))
        assert np.array_equal(flags, (a == b).astype(np.uint8))

    def test_equals_single_bit(self, alu):
        a = np.array([[0, 1] * (alu.lanes // 2)], dtype=np.uint8)
        b = np.zeros((1, alu.lanes), dtype=np.uint8)
        flags = alu.equals(a, b)
        assert np.array_equal(flags, 1 - a[0])


class TestMultiply:
    def test_vectorized_multiplication(self, alu):
        rng = np.random.default_rng(5)
        a = lanes_of(alu, rng, width=4)
        b = lanes_of(alu, rng, width=4)
        product = alu.multiply(to_bit_slices(a, 4), to_bit_slices(b, 4))
        assert product.shape == (8, alu.lanes)
        assert np.array_equal(from_bit_slices(product), a * b)

    def test_multiply_by_zero_and_one(self, alu):
        rng = np.random.default_rng(6)
        a = lanes_of(alu, rng, width=4)
        zero = np.zeros(alu.lanes, dtype=np.int64)
        one = np.ones(alu.lanes, dtype=np.int64)
        assert np.all(
            from_bit_slices(alu.multiply(to_bit_slices(a, 4), to_bit_slices(zero, 4)))
            == 0
        )
        assert np.array_equal(
            from_bit_slices(alu.multiply(to_bit_slices(a, 4), to_bit_slices(one, 4))),
            a,
        )

    def test_mixed_widths(self, alu):
        rng = np.random.default_rng(7)
        a = lanes_of(alu, rng, width=5)
        b = lanes_of(alu, rng, width=3)
        product = alu.multiply(to_bit_slices(a, 5), to_bit_slices(b, 3))
        assert product.shape == (8, alu.lanes)
        assert np.array_equal(from_bit_slices(product), a * b)


class TestConstruction:
    def test_unaligned_maj_block_rejected(self, ideal_host):
        with pytest.raises(ValueError):
            BitSerialAlu(
                ideal_host, subarray_pair=(0, 1), maj_subarray=2,
                maj_block_local_row=2,
            )

    def test_auto_maj_subarray(self, ideal_host):
        alu = BitSerialAlu(ideal_host, subarray_pair=(0, 1))
        assert alu.lanes > 0


class TestMajorityLowering:
    def test_maj_matches_ideal_majority_exhaustively(self, alu):
        """Pin `_maj` (the carry chain's majority) to the ground truth."""
        from repro.core.maj import ideal_majority

        lanes = alu.lanes
        assert lanes >= 8
        combos = np.array(
            [[(i >> bit) & 1 for i in range(8)] for bit in range(3)],
            dtype=np.uint8,
        )
        reps = -(-lanes // 8)
        a, b, c = (np.tile(combos[bit], reps)[:lanes] for bit in range(3))
        got = alu._maj(a, b, c)
        assert np.array_equal(got, ideal_majority([a, b, c]))
