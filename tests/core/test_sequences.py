"""Tests for the FCDRAM command-sequence constructors."""

import pytest

from repro.bender.commands import Opcode
from repro.core.sequences import (
    double_activation_program,
    frac_program,
    logic_program,
    nominal_activation_program,
    not_program,
    rowclone_program,
)
from repro.dram.timing import ReducedTiming, timing_for_speed

TIMING = timing_for_speed(2666)


def opcodes(program):
    return [command.opcode for command in program]


class TestSequenceShapes:
    def test_double_activation_shape(self):
        program = double_activation_program(
            TIMING, 0, 1, 2, ReducedTiming.for_logic_op(TIMING)
        )
        assert opcodes(program) == [Opcode.ACT, Opcode.PRE, Opcode.ACT, Opcode.PRE]
        rows = [c.row for c in program if c.opcode is Opcode.ACT]
        assert rows == [1, 2]

    def test_not_program_full_first_tras(self):
        program = not_program(TIMING, 0, 1, 200)
        first_act = program.commands[0]
        assert first_act.wait_cycles * TIMING.t_ck >= TIMING.t_ras

    def test_not_program_violates_trp(self):
        program = not_program(TIMING, 0, 1, 200)
        pre = program.commands[1]
        assert pre.wait_cycles * TIMING.t_ck < 3.0

    def test_logic_program_violates_both(self):
        program = logic_program(TIMING, 0, 1, 200)
        first_act, pre = program.commands[0], program.commands[1]
        assert first_act.wait_cycles * TIMING.t_ck < 3.0
        assert pre.wait_cycles * TIMING.t_ck < 3.0

    def test_rowclone_same_shape_as_not(self):
        a = not_program(TIMING, 0, 1, 2)
        b = rowclone_program(TIMING, 0, 1, 2)
        assert [c.wait_cycles for c in a] == [c.wait_cycles for c in b]

    def test_frac_program_interrupts_before_sensing(self):
        program = frac_program(TIMING, 0, 5)
        assert opcodes(program) == [Opcode.ACT, Opcode.PRE]
        act = program.commands[0]
        from repro.dram.bank import SENSE_LATENCY_NS

        assert act.wait_cycles * TIMING.t_ck < SENSE_LATENCY_NS

    def test_nominal_program_compliant(self):
        program = nominal_activation_program(TIMING, 0, 5)
        act, pre = program.commands
        assert act.wait_cycles * TIMING.t_ck >= TIMING.t_ras
        assert pre.wait_cycles * TIMING.t_ck >= TIMING.t_rp

    @pytest.mark.parametrize("speed", [2133, 2400, 2666, 3200])
    def test_all_speed_grades_supported(self, speed):
        timing = timing_for_speed(speed)
        program = logic_program(timing, 0, 0, 200)
        assert len(program) == 4
