"""Tests for cell profiling and modular redundancy."""

import numpy as np
import pytest

from repro.core.addressing import find_pattern_pair
from repro.core.logic import LogicOperation, ideal_output
from repro.core.not_op import NotOperation
from repro.core.reliability import (
    CellProfile,
    RedundantLogicOperation,
    RedundantNotOperation,
    majority_vote,
    profile_cells,
)
from repro.dram.decoder import ActivationKind


def build_logic(host, n=2, op="and", seed=0):
    ref, com = find_pattern_pair(
        host.module.decoder, host.module.config.geometry,
        0, 0, 1, n, ActivationKind.N_TO_N, seed=seed,
    )
    return LogicOperation(host, 0, ref, com, op=op)


class TestMajorityVote:
    def test_basic(self):
        votes = [
            np.array([1, 0, 1], dtype=np.uint8),
            np.array([1, 1, 0], dtype=np.uint8),
            np.array([0, 1, 1], dtype=np.uint8),
        ]
        assert majority_vote(votes).tolist() == [1, 1, 1]

    def test_rejects_even(self):
        with pytest.raises(ValueError):
            majority_vote([np.zeros(2), np.zeros(2)])


class TestCellProfile:
    def test_profile_identifies_bad_cells(self):
        rng = np.random.default_rng(0)
        # Cell 0 always correct, cell 1 correct 50% of the time.
        def run_once(r):
            return np.array([1, r.random() < 0.5])

        profile = profile_cells(run_once, trials=200, rng=rng, threshold=0.9)
        assert profile.mask.tolist() == [True, False]
        assert profile.fraction_good == 0.5

    def test_apply_masks_untrusted(self):
        profile = CellProfile(np.array([True, False]), 0.9, 10)
        assert profile.apply(np.array([1, 1])).tolist() == [1, 0]
        assert profile.apply(np.array([1, 1]), fallback=1).tolist() == [1, 1]

    def test_apply_shape_checked(self):
        profile = CellProfile(np.array([True]), 0.9, 10)
        with pytest.raises(ValueError):
            profile.apply(np.array([1, 0]))

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            profile_cells(lambda r: np.ones(2), 0, np.random.default_rng(0))

    def test_profile_on_real_chip(self, real_host):
        operation = build_logic(real_host, n=2)
        rng_operands = np.random.default_rng(7)
        shared = operation.shared_columns

        def run_once(rng):
            operands = [
                rng.integers(0, 2, real_host.module.row_bits, dtype=np.uint8)
                for _ in range(operation.n_inputs)
            ]
            result = operation.run(operands).result
            expected = ideal_output("and", [o[shared] for o in operands])
            return result == expected

        profile = profile_cells(run_once, 60, rng_operands, threshold=0.9)
        assert 0.0 < profile.fraction_good <= 1.0


class TestRedundancy:
    def _accuracy(self, runner, operation, trials, rng):
        correct = 0
        total = 0
        shared = operation.shared_columns
        for _ in range(trials):
            operands = [
                rng.integers(
                    0, 2, operation.host.module.row_bits, dtype=np.uint8
                )
                for _ in range(operation.n_inputs)
            ]
            result = runner(operands)
            expected = ideal_output(operation.op, [o[shared] for o in operands])
            correct += int(np.sum(result == expected))
            total += expected.size
        return correct / total

    def test_tmr_beats_single_shot_on_real_chip(self, real_host):
        operation = build_logic(real_host, n=2, seed=3)
        redundant = RedundantLogicOperation(operation, repeats=3)
        single = self._accuracy(
            lambda ops: operation.run(ops).result,
            operation, 40, np.random.default_rng(1),
        )
        voted = self._accuracy(
            redundant.run, operation, 40, np.random.default_rng(1)
        )
        assert voted > single

    def test_tmr_exact_on_ideal_chip(self, ideal_host):
        operation = build_logic(ideal_host, n=4, seed=4)
        redundant = RedundantLogicOperation(operation, repeats=3)
        rng = np.random.default_rng(2)
        operands = [
            rng.integers(0, 2, ideal_host.module.row_bits, dtype=np.uint8)
            for _ in range(4)
        ]
        expected = ideal_output(
            "and", [o[operation.shared_columns] for o in operands]
        )
        assert np.array_equal(redundant.run(operands), expected)

    def test_redundant_not_votes_across_rows(self, real_host):
        src, dst = find_pattern_pair(
            real_host.module.decoder, real_host.module.config.geometry,
            0, 0, 1, 4, ActivationKind.N_TO_N, seed=5,
        )
        operation = NotOperation(real_host, 0, src, dst)
        redundant = RedundantNotOperation(operation, repeats=3)
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, real_host.module.row_bits, dtype=np.uint8)
        voted = redundant.run(bits)
        expected = 1 - bits[operation.shared_columns]
        assert np.mean(voted == expected) > 0.97

    def test_even_repeats_rejected(self, ideal_host):
        operation = build_logic(ideal_host, n=2, seed=6)
        with pytest.raises(ValueError):
            RedundantLogicOperation(operation, repeats=2)
