"""Tests for the many-input logic operations (§6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addressing import find_pattern_pair
from repro.core.logic import BASE_OPS, LogicOperation, ideal_output
from repro.dram.decoder import ActivationKind
from repro.errors import UnsupportedOperationError


def find_nn_pair(host, n, seed=0, subarrays=(2, 3)):
    return find_pattern_pair(
        host.module.decoder,
        host.module.config.geometry,
        0,
        subarrays[0],
        subarrays[1],
        n,
        ActivationKind.N_TO_N,
        seed=seed,
    )


def random_operands(host, n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 2, host.module.row_bits, dtype=np.uint8) for _ in range(n)
    ]


class TestIdealOutput:
    def test_known_values(self):
        a = np.array([1, 1, 0, 0], dtype=np.uint8)
        b = np.array([1, 0, 1, 0], dtype=np.uint8)
        assert ideal_output("and", [a, b]).tolist() == [1, 0, 0, 0]
        assert ideal_output("or", [a, b]).tolist() == [1, 1, 1, 0]
        assert ideal_output("nand", [a, b]).tolist() == [0, 1, 1, 1]
        assert ideal_output("nor", [a, b]).tolist() == [0, 0, 0, 1]

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            ideal_output("xor", [np.zeros(2), np.zeros(2)])

    @given(
        st.lists(
            st.lists(st.integers(0, 1), min_size=6, max_size=6),
            min_size=2,
            max_size=16,
        )
    )
    def test_de_morgan(self, rows):
        operands = [np.array(row, dtype=np.uint8) for row in rows]
        complements = [1 - operand for operand in operands]
        # NAND(x...) == OR(~x...)
        assert np.array_equal(
            ideal_output("nand", operands), ideal_output("or", complements)
        )
        # NOR(x...) == AND(~x...)
        assert np.array_equal(
            ideal_output("nor", operands), ideal_output("and", complements)
        )

    @given(
        st.lists(st.lists(st.integers(0, 1), min_size=4, max_size=4),
                 min_size=2, max_size=8)
    )
    def test_complement_pairs(self, rows):
        operands = [np.array(row, dtype=np.uint8) for row in rows]
        assert np.array_equal(
            ideal_output("nand", operands), 1 - ideal_output("and", operands)
        )
        assert np.array_equal(
            ideal_output("nor", operands), 1 - ideal_output("or", operands)
        )


class TestLogicOperation:
    @pytest.mark.parametrize("op", sorted(BASE_OPS))
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_all_ops_all_fanins_exact_on_ideal_chip(self, ideal_host, op, n):
        ref, com = find_nn_pair(ideal_host, n, seed=n)
        operation = LogicOperation(ideal_host, 0, ref, com, op=op)
        operands = random_operands(ideal_host, operation.n_inputs, seed=n)
        outcome = operation.run(operands)
        expected = ideal_output(op, [o[operation.shared_columns] for o in operands])
        assert np.array_equal(outcome.result, expected)

    def test_rejects_non_nn_pattern(self, ideal_host):
        geometry = ideal_host.module.config.geometry
        decoder = ideal_host.module.decoder
        # Find a LAST_ONLY pair.
        rng = np.random.default_rng(0)
        for _ in range(5000):
            row_f = geometry.bank_row(2, int(rng.integers(192)))
            row_l = geometry.bank_row(3, int(rng.integers(192)))
            pattern = decoder.neighboring_pattern(0, row_f, row_l)
            if pattern.kind is ActivationKind.LAST_ONLY:
                with pytest.raises(UnsupportedOperationError):
                    LogicOperation(ideal_host, 0, row_f, row_l, op="and")
                return
        pytest.skip("no LAST_ONLY pair found in the sample")

    def test_rejects_one_input_pattern(self, ideal_host):
        ref, com = find_nn_pair(ideal_host, 1, seed=1)
        with pytest.raises(UnsupportedOperationError):
            LogicOperation(ideal_host, 0, ref, com, op="and")

    def test_rejects_unknown_op(self, ideal_host):
        ref, com = find_nn_pair(ideal_host, 2, seed=2)
        with pytest.raises(ValueError):
            LogicOperation(ideal_host, 0, ref, com, op="xor")

    def test_operand_count_validated(self, ideal_host):
        ref, com = find_nn_pair(ideal_host, 4, seed=3)
        operation = LogicOperation(ideal_host, 0, ref, com, op="and")
        with pytest.raises(ValueError):
            operation.set_operands(random_operands(ideal_host, 3))

    def test_reference_rows_disjoint_from_compute_rows(self, ideal_host):
        ref, com = find_nn_pair(ideal_host, 8, seed=4)
        operation = LogicOperation(ideal_host, 0, ref, com, op="or")
        assert not set(operation.reference_rows) & set(operation.compute_rows)
        assert ref in operation.reference_rows
        assert com in operation.compute_rows

    def test_reference_preparation_sets_levels(self, ideal_host):
        ref, com = find_nn_pair(ideal_host, 4, seed=5)
        operation = LogicOperation(ideal_host, 0, ref, com, op="and")
        operation.prepare_reference()
        bank = ideal_host.module.chips[0].bank(0)
        geometry = ideal_host.module.config.geometry
        for row in operation.reference_rows[:-1]:
            volts = bank.subarrays[geometry.subarray_of_row(row)].read_voltages(
                geometry.local_row(row)
            )
            assert np.all(volts == 1.0)
        frac_row = operation.reference_rows[-1]
        volts = bank.subarrays[geometry.subarray_of_row(frac_row)].read_voltages(
            geometry.local_row(frac_row)
        )
        assert np.allclose(volts, 0.5)

    def test_worst_case_patterns_exact_on_ideal_chip(self, ideal_host):
        # All-but-one logic-1 is the AND worst case (Obs. 14); the ideal
        # chip must still resolve it exactly.
        ref, com = find_nn_pair(ideal_host, 8, seed=6)
        operation = LogicOperation(ideal_host, 0, ref, com, op="and")
        operands = [
            np.ones(ideal_host.module.row_bits, dtype=np.uint8) for _ in range(7)
        ] + [np.zeros(ideal_host.module.row_bits, dtype=np.uint8)]
        outcome = operation.run(operands)
        assert np.all(outcome.result == 0)

    def test_repeated_execution_consistent(self, ideal_host):
        ref, com = find_nn_pair(ideal_host, 4, seed=7)
        operation = LogicOperation(ideal_host, 0, ref, com, op="nor")
        operands = random_operands(ideal_host, 4, seed=8)
        first = operation.run(operands).result
        second = operation.run(operands).result
        assert np.array_equal(first, second)
