"""Tests for address-pair discovery and layout helpers."""

import numpy as np
import pytest

from repro.core.addressing import find_pattern_pair, find_pattern_pairs
from repro.core.layout import (
    bank_rows,
    chip_shared_columns,
    module_shared_columns,
    neighboring_subarray_pairs,
)
from repro.dram.decoder import ActivationKind
from repro.errors import AddressError, ReverseEngineeringError


class TestFindPatternPairs:
    def test_finds_requested_pattern(self, ideal_host):
        decoder = ideal_host.module.decoder
        geometry = ideal_host.module.config.geometry
        for n in (1, 2, 4, 8, 16):
            row_f, row_l = find_pattern_pair(
                decoder, geometry, 0, 0, 1, n, ActivationKind.N_TO_N, seed=n
            )
            pattern = decoder.neighboring_pattern(0, row_f, row_l)
            assert pattern.kind is ActivationKind.N_TO_N
            assert pattern.n_first == n

    def test_limit_respected(self, ideal_host):
        pairs = find_pattern_pairs(
            ideal_host.module.decoder,
            ideal_host.module.config.geometry,
            0, 0, 1, 8, ActivationKind.N_TO_N, limit=5,
        )
        assert len(pairs) == 5
        assert len(set(pairs)) == 5

    def test_budget_exhaustion_raises(self, ideal_host):
        with pytest.raises(ReverseEngineeringError):
            find_pattern_pairs(
                ideal_host.module.decoder,
                ideal_host.module.config.geometry,
                0, 0, 1, 16, ActivationKind.N_TO_2N,
                limit=10_000, max_tries=200,
            )

    def test_predicate_filters(self, ideal_host):
        decoder = ideal_host.module.decoder
        geometry = ideal_host.module.config.geometry

        def first_row_low(pattern, row_f, row_l):
            return geometry.local_row(row_f) < 96

        row_f, _row_l = find_pattern_pair(
            decoder, geometry, 0, 0, 1, 4, ActivationKind.N_TO_N,
            predicate=first_row_low,
        )
        assert geometry.local_row(row_f) < 96

    def test_deterministic_for_seed(self, ideal_host):
        args = (
            ideal_host.module.decoder,
            ideal_host.module.config.geometry,
            0, 0, 1, 4, ActivationKind.N_TO_N,
        )
        assert find_pattern_pair(*args, seed=9) == find_pattern_pair(*args, seed=9)

    def test_rejects_zero_limit(self, ideal_host):
        with pytest.raises(ValueError):
            find_pattern_pairs(
                ideal_host.module.decoder,
                ideal_host.module.config.geometry,
                0, 0, 1, 4, ActivationKind.N_TO_N, limit=0,
            )


class TestLayout:
    def test_shared_columns_alternate(self, small_geometry):
        cols_01 = chip_shared_columns(small_geometry, 0, 1)
        cols_12 = chip_shared_columns(small_geometry, 1, 2)
        assert np.array_equal(cols_01, np.arange(1, 64, 2))
        assert np.array_equal(cols_12, np.arange(0, 64, 2))

    def test_shared_columns_rejects_non_neighbors(self, small_geometry):
        with pytest.raises(AddressError):
            chip_shared_columns(small_geometry, 0, 2)

    def test_module_shared_columns_span_chips(self, hynix_config):
        from repro import SeedTree
        from repro.dram.module import Module

        module = Module(hynix_config, chip_count=2, seed_tree=SeedTree(0))
        columns = module_shared_columns(module, 0, 1)
        assert columns.size == module.row_bits // 2
        per_chip = chip_shared_columns(hynix_config.geometry, 0, 1)
        assert np.array_equal(columns[: per_chip.size], per_chip)
        assert np.array_equal(columns[per_chip.size:], per_chip + 64)

    def test_bank_rows(self, small_geometry):
        assert bank_rows(small_geometry, 1, [0, 5]) == [192, 197]

    def test_neighboring_pairs(self, small_geometry):
        assert neighboring_subarray_pairs(small_geometry) == [
            (0, 1), (1, 2), (2, 3),
        ]
