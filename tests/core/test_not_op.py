"""Tests for the in-DRAM NOT operation (§5)."""

import numpy as np
import pytest

from repro.core.addressing import find_pattern_pair
from repro.core.not_op import NotOperation
from repro.dram.decoder import ActivationKind
from repro.errors import AddressError


def find_not_pair(host, n=1, kind=ActivationKind.N_TO_N, seed=0):
    return find_pattern_pair(
        host.module.decoder,
        host.module.config.geometry,
        0,
        0,
        1,
        n,
        kind,
        seed=seed,
    )


class TestNotOperation:
    def test_single_destination_exact_on_ideal_chip(self, ideal_host, rng):
        src, dst = find_not_pair(ideal_host)
        operation = NotOperation(ideal_host, 0, src, dst)
        bits = rng.integers(0, 2, ideal_host.module.row_bits, dtype=np.uint8)
        outcome = operation.run(bits)
        expected = 1 - bits[operation.shared_columns]
        for result in outcome.outputs.values():
            assert np.array_equal(result, expected)

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_multi_destination_exact_on_ideal_chip(self, ideal_host, rng, n):
        src, dst = find_not_pair(ideal_host, n=n, seed=n)
        operation = NotOperation(ideal_host, 0, src, dst)
        assert len(operation.destination_rows()) == n
        bits = rng.integers(0, 2, ideal_host.module.row_bits, dtype=np.uint8)
        outcome = operation.run(bits)
        expected = 1 - bits[operation.shared_columns]
        assert len(outcome.outputs) == n
        for result in outcome.outputs.values():
            assert np.array_equal(result, expected)

    def test_n2n_pattern_destination_count(self, ideal_host, rng):
        src, dst = find_not_pair(ideal_host, n=4, kind=ActivationKind.N_TO_2N, seed=2)
        operation = NotOperation(ideal_host, 0, src, dst)
        pattern = operation.expected_pattern()
        assert pattern.kind is ActivationKind.N_TO_2N
        assert pattern.n_last == 2 * pattern.n_first
        bits = rng.integers(0, 2, ideal_host.module.row_bits, dtype=np.uint8)
        outcome = operation.run(bits)
        expected = 1 - bits[operation.shared_columns]
        assert len(outcome.outputs) == pattern.n_last
        for result in outcome.outputs.values():
            assert np.array_equal(result, expected)

    def test_double_not_is_identity(self, ideal_host, rng):
        # NOT from subarray 0 to 1, then NOT back from 1 to 0.
        src, dst = find_not_pair(ideal_host, seed=5)
        forward = NotOperation(ideal_host, 0, src, dst)
        bits = rng.integers(0, 2, ideal_host.module.row_bits, dtype=np.uint8)
        forward.run(bits)
        dst_row = forward.destination_rows()[0]

        back_src, back_dst = find_pattern_pair(
            ideal_host.module.decoder,
            ideal_host.module.config.geometry,
            0,
            1,
            0,
            1,
            ActivationKind.N_TO_N,
            seed=6,
        )
        # Move the intermediate into the discovered source row first.
        intermediate = ideal_host.peek_row(0, dst_row)
        ideal_host.fill_row(0, back_src, intermediate)
        backward = NotOperation(ideal_host, 0, back_src, back_dst)
        backward.execute()
        final = backward.read_outcome()
        shared = forward.shared_columns
        assert np.array_equal(shared, backward.shared_columns)
        for result in final.outputs.values():
            assert np.array_equal(result, bits[shared])

    def test_rejects_same_subarray(self, ideal_host):
        with pytest.raises(AddressError):
            NotOperation(ideal_host, 0, 5, 10)

    def test_rejects_distant_subarrays(self, ideal_host):
        geometry = ideal_host.module.config.geometry
        with pytest.raises(AddressError):
            NotOperation(
                ideal_host, 0, geometry.bank_row(0, 5), geometry.bank_row(3, 5)
            )

    def test_shared_columns_are_half_the_row(self, ideal_host):
        src, dst = find_not_pair(ideal_host, seed=7)
        operation = NotOperation(ideal_host, 0, src, dst)
        assert operation.shared_columns.size == ideal_host.module.row_bits // 2
