"""Batched trial engine vs serial path: bit-identity contract.

The batched engine (``batch_trials=0`` / ``k>1``) must produce the
exact success counts of the serial per-trial loop (``batch_trials=1``)
— per measurement, under fault injection, and through the sweep /
process-pool layers.  These tests pin that contract across every
operation family: NOT, and AND/NAND plus OR/NOR (each logic measurement
yields both terminals).
"""

import numpy as np
import pytest

from repro.characterization import Resilience, RetryPolicy, run_experiment
from repro.characterization.runner import (
    DEFAULT,
    FULL,
    SMOKE,
    find_logic_measurement,
    find_not_measurement,
    iter_descriptors,
    iter_targets,
    materialize_targets,
)
from repro.core.success import DEFAULT_TRIAL_BLOCK, _trial_blocks
from repro.faults import FaultPlan

#: Engines under test: serial, auto-batched, and a block size that does
#: not divide the trial count (forces a ragged final block).
ENGINES = (1, 0, 7)

TRIALS = 9

#: Cell-level faults active during the fault-injected equivalence runs.
CELL_FAULT_PLAN = FaultPlan(seed=2, stuck_row_rate=0.05, flaky_read_rate=0.1)


def _not_counts(seed, n_destination, batch_trials, faults=None):
    descriptors = iter_descriptors(SMOKE)
    for target in materialize_targets(descriptors, SMOKE, seed, faults=faults):
        measurement = find_not_measurement(target, n_destination)
        if measurement is None:
            continue
        result = measurement.run(
            TRIALS, np.random.default_rng(seed), batch_trials=batch_trials
        )
        return result.success_counts
    return None


def _logic_counts(seed, base_op, n_inputs, batch_trials, faults=None):
    descriptors = iter_descriptors(SMOKE)
    for target in materialize_targets(descriptors, SMOKE, seed, faults=faults):
        measurement = find_logic_measurement(target, base_op, n_inputs)
        if measurement is None:
            continue
        pair = measurement.run(
            TRIALS, np.random.default_rng(seed), batch_trials=batch_trials
        )
        # Primary and complement cover AND+NAND (or OR+NOR) at once.
        return pair.primary.success_counts, pair.complement.success_counts
    return None


class TestNotEquivalence:
    @pytest.mark.parametrize("n_destination", [2, 4, 8, 16])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_batched_counts_identical(self, n_destination, seed):
        serial = _not_counts(seed, n_destination, batch_trials=1)
        if serial is None:
            pytest.skip(f"no target supports {n_destination} destinations")
        for engine in ENGINES[1:]:
            batched = _not_counts(seed, n_destination, batch_trials=engine)
            assert np.array_equal(serial, batched), (
                f"NOT n={n_destination} diverged at batch_trials={engine}"
            )

    @pytest.mark.parametrize("seed", [0, 3])
    def test_batched_counts_identical_under_faults(self, seed):
        serial = _not_counts(seed, 2, batch_trials=1, faults=CELL_FAULT_PLAN)
        assert serial is not None
        for engine in ENGINES[1:]:
            batched = _not_counts(
                seed, 2, batch_trials=engine, faults=CELL_FAULT_PLAN
            )
            assert np.array_equal(serial, batched)


class TestLogicEquivalence:
    @pytest.mark.parametrize("base_op", ["and", "or"])
    @pytest.mark.parametrize("n_inputs", [2, 4, 8, 16])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_batched_pair_identical(self, base_op, n_inputs, seed):
        serial = _logic_counts(seed, base_op, n_inputs, batch_trials=1)
        if serial is None:
            pytest.skip(f"no target supports {n_inputs}-input {base_op}")
        for engine in ENGINES[1:]:
            batched = _logic_counts(seed, base_op, n_inputs, batch_trials=engine)
            assert np.array_equal(serial[0], batched[0]), (
                f"{base_op} n={n_inputs} primary diverged at "
                f"batch_trials={engine}"
            )
            assert np.array_equal(serial[1], batched[1]), (
                f"{base_op} n={n_inputs} complement diverged at "
                f"batch_trials={engine}"
            )

    @pytest.mark.parametrize("base_op", ["and", "or"])
    def test_batched_pair_identical_under_faults(self, base_op):
        serial = _logic_counts(
            0, base_op, 4, batch_trials=1, faults=CELL_FAULT_PLAN
        )
        assert serial is not None
        for engine in ENGINES[1:]:
            batched = _logic_counts(
                0, base_op, 4, batch_trials=engine, faults=CELL_FAULT_PLAN
            )
            assert np.array_equal(serial[0], batched[0])
            assert np.array_equal(serial[1], batched[1])

    @pytest.mark.parametrize("mode,ones_count", [("all01", None), ("ones_count", 2)])
    def test_constant_pattern_modes_identical(self, mode, ones_count):
        def run(batch_trials):
            for target in iter_targets(SMOKE, seed=1):
                measurement = find_logic_measurement(target, "and", 4)
                if measurement is None:
                    continue
                pair = measurement.run(
                    TRIALS,
                    np.random.default_rng(1),
                    mode=mode,
                    ones_count=ones_count,
                    batch_trials=batch_trials,
                )
                return pair.primary.success_counts, pair.complement.success_counts
            return None

        serial = run(1)
        assert serial is not None
        batched = run(0)
        assert np.array_equal(serial[0], batched[0])
        assert np.array_equal(serial[1], batched[1])


class TestSweepEquivalence:
    def _stats(self, result):
        return {label: stats.__dict__ for label, stats in result.groups.items()}

    def test_experiment_batched_vs_serial_engine(self):
        batched = run_experiment("fig15", scale=SMOKE, seed=0)
        serial = run_experiment(
            "fig15", scale=SMOKE.with_batch_trials(1), seed=0
        )
        assert self._stats(batched) == self._stats(serial)
        assert batched.notes == serial.notes

    def test_experiment_batched_vs_serial_under_faults(self):
        plan = FaultPlan(seed=1, host_timeout_rate=2e-3)
        res = lambda: Resilience(faults=plan, retry=RetryPolicy(backoff_s=0.0))
        batched = run_experiment("fig7", scale=SMOKE, seed=0, resilience=res())
        serial = run_experiment(
            "fig7", scale=SMOKE.with_batch_trials(1), seed=0, resilience=res()
        )
        assert self._stats(batched) == self._stats(serial)

    def test_batched_engine_identical_across_job_counts(self):
        serial_exec = run_experiment("fig7", scale=SMOKE, seed=0)
        pooled = run_experiment("fig7", scale=SMOKE, seed=0, jobs=2)
        assert self._stats(serial_exec) == self._stats(pooled)

    def test_fingerprint_ignores_trial_engine(self):
        from repro.characterization.experiments.base import _NotSweepWork, NotVariant
        from repro.characterization.resilience import sweep_fingerprint

        def work(batch_trials):
            return _NotSweepWork(
                seed=0,
                trials=5,
                variants=(NotVariant(1),),
                label_fn=None,
                temperatures=(50.0,),
                good_cells_only=False,
                batch_trials=batch_trials,
            )

        descriptors = iter_descriptors(SMOKE)
        batched = sweep_fingerprint(work(0), SMOKE, 0, descriptors, None)
        serial = sweep_fingerprint(
            work(1), SMOKE.with_batch_trials(1), 0, descriptors, None
        )
        assert batched == serial

    def test_checkpoint_resumes_across_engines(self, tmp_path):
        # A sweep checkpointed under the serial engine must resume —
        # and stay bit-identical — under the batched default.
        retry = RetryPolicy(backoff_s=0.0)
        first = Resilience(checkpoint_dir=str(tmp_path), retry=retry)
        first.begin_experiment("fig7")
        run_experiment(
            "fig7", scale=SMOKE.with_batch_trials(1), seed=0, resilience=first
        )
        resumed = Resilience(
            checkpoint_dir=str(tmp_path), resume=True, retry=retry
        )
        resumed.begin_experiment("fig7")
        result = run_experiment("fig7", scale=SMOKE, seed=0, resilience=resumed)
        assert result.health.resumed_targets == 9
        baseline = run_experiment("fig7", scale=SMOKE, seed=0)
        assert self._stats(result) == self._stats(baseline)


class TestTrialBlocks:
    def test_serial_is_all_ones(self):
        assert _trial_blocks(4, 1) == [1, 1, 1, 1]

    def test_auto_batches_whole_run(self):
        assert _trial_blocks(600, 0) == [600]
        assert _trial_blocks(DEFAULT_TRIAL_BLOCK + 1, 0) == [
            DEFAULT_TRIAL_BLOCK,
            1,
        ]

    def test_explicit_block_size_is_ragged(self):
        assert _trial_blocks(9, 7) == [7, 2]
        assert _trial_blocks(9, 9) == [9]

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="batch_trials"):
            _trial_blocks(10, -1)

    def test_scale_rejects_negative(self):
        with pytest.raises(ValueError, match="batch_trials"):
            SMOKE.with_batch_trials(-1)


class TestScalePresets:
    def test_preset_trial_counts_match_documentation(self):
        # The repro.core.success module docstring cites these counts;
        # keep text and presets in lock-step.
        assert SMOKE.trials == 40
        assert DEFAULT.trials == 150
        assert FULL.trials == 600

    def test_presets_default_to_batched_engine(self):
        assert SMOKE.batch_trials == 0
        assert DEFAULT.batch_trials == 0
        assert FULL.batch_trials == 0
