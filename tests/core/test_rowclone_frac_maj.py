"""Tests for RowClone, Frac, and the MAJ baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frac import is_fractional, store_half_vdd
from repro.core.maj import MajorityOperation, ideal_majority
from repro.core.rowclone import rowclone, rowclone_match_fraction
from repro.errors import AddressError, UnsupportedOperationError


def random_bits(host, seed=0):
    return np.random.default_rng(seed).integers(
        0, 2, host.module.row_bits, dtype=np.uint8
    )


class TestRowClone:
    def test_copies_within_subarray(self, ideal_host):
        geometry = ideal_host.module.config.geometry
        src = geometry.bank_row(2, 10)
        dst = geometry.bank_row(2, 100)
        bits = random_bits(ideal_host, 1)
        ideal_host.fill_row(0, src, bits)
        ideal_host.fill_row(0, dst, 1 - bits)
        rowclone(ideal_host, 0, src, dst)
        assert np.array_equal(ideal_host.peek_row(0, dst), bits)
        assert np.array_equal(ideal_host.peek_row(0, src), bits)

    def test_does_not_copy_across_subarrays(self, ideal_host):
        geometry = ideal_host.module.config.geometry
        src = geometry.bank_row(0, 10)
        dst = geometry.bank_row(1, 100)
        pattern = random_bits(ideal_host, 2)
        background = random_bits(ideal_host, 3)
        fraction = rowclone_match_fraction(
            ideal_host, 0, src, dst, pattern, background
        )
        assert fraction < 0.9

    def test_match_fraction_is_one_within_subarray(self, ideal_host):
        geometry = ideal_host.module.config.geometry
        src = geometry.bank_row(1, 20)
        dst = geometry.bank_row(1, 150)
        fraction = rowclone_match_fraction(
            ideal_host, 0, src, dst, random_bits(ideal_host, 4),
            random_bits(ideal_host, 5),
        )
        assert fraction == 1.0

    def test_rejects_identical_rows(self, ideal_host):
        with pytest.raises(AddressError):
            rowclone(ideal_host, 0, 5, 5)


class TestFrac:
    def test_stores_half_vdd(self, ideal_host):
        geometry = ideal_host.module.config.geometry
        row = geometry.bank_row(3, 40)
        ideal_host.fill_row(0, row, np.ones(ideal_host.module.row_bits, np.uint8))
        store_half_vdd(ideal_host, 0, row)
        volts = ideal_host.module.chips[0].bank(0).subarrays[3].read_voltages(40)
        assert np.all(is_fractional(volts, tolerance=0.01))

    def test_real_chip_frac_is_noisy_but_close(self, real_host):
        geometry = real_host.module.config.geometry
        row = geometry.bank_row(3, 40)
        store_half_vdd(real_host, 0, row)
        volts = real_host.module.chips[0].bank(0).subarrays[3].read_voltages(40)
        assert np.all(is_fractional(volts, tolerance=0.1))
        # And it really is noisy on real silicon.
        assert volts.std() > 0.0

    def test_is_fractional_tolerance(self):
        volts = np.array([0.5, 0.55, 0.7])
        assert is_fractional(volts, tolerance=0.06).tolist() == [True, True, False]


class TestMajority:
    def test_ideal_majority_known(self):
        a = np.array([1, 1, 0, 0], dtype=np.uint8)
        b = np.array([1, 0, 1, 0], dtype=np.uint8)
        c = np.array([0, 1, 1, 0], dtype=np.uint8)
        assert ideal_majority([a, b, c]).tolist() == [1, 1, 1, 0]

    def test_ideal_majority_rejects_even(self):
        with pytest.raises(ValueError):
            ideal_majority([np.zeros(2), np.zeros(2)])

    def test_in_dram_maj3_exact_on_ideal_chip(self, ideal_host):
        geometry = ideal_host.module.config.geometry
        row_a = geometry.bank_row(2, 100)
        row_b = geometry.bank_row(2, 103)  # differs in two low bits -> 4 rows
        operation = MajorityOperation(ideal_host, 0, row_a, row_b)
        operands = [random_bits(ideal_host, 10 + i) for i in range(3)]
        outcome = operation.run(operands)
        assert np.array_equal(outcome.result, ideal_majority(operands))

    def test_maj_covers_full_row(self, ideal_host):
        # Unlike NOT/AND/OR, MAJ lands on all columns (both stripes).
        geometry = ideal_host.module.config.geometry
        operation = MajorityOperation(
            ideal_host, 0, geometry.bank_row(2, 100), geometry.bank_row(2, 103)
        )
        operands = [random_bits(ideal_host, 20 + i) for i in range(3)]
        outcome = operation.run(operands)
        assert outcome.result.shape == (ideal_host.module.row_bits,)

    def test_rejects_non_quad_addresses(self, ideal_host):
        geometry = ideal_host.module.config.geometry
        with pytest.raises(UnsupportedOperationError):
            MajorityOperation(
                ideal_host, 0, geometry.bank_row(2, 100), geometry.bank_row(2, 101)
            )

    def test_rejects_wrong_operand_count(self, ideal_host):
        geometry = ideal_host.module.config.geometry
        operation = MajorityOperation(
            ideal_host, 0, geometry.bank_row(2, 100), geometry.bank_row(2, 103)
        )
        with pytest.raises(ValueError):
            operation.run([random_bits(ideal_host)] * 2)

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=10, deadline=None)
    def test_maj_matches_boolean_identity(self, seed):
        # MAJ(a, b, c) == OR(AND(a,b), AND(b,c), AND(a,c))
        operands = [
            np.random.default_rng(seed + i).integers(0, 2, 64, dtype=np.uint8)
            for i in range(3)
        ]
        a, b, c = operands
        identity = ((a & b) | (b & c) | (a & c)).astype(np.uint8)
        assert np.array_equal(ideal_majority(operands), identity)
