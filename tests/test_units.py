"""Tests for voltage/time unit helpers."""

import pytest

from repro.units import (
    GND,
    VDD,
    VDD_HALF,
    logic_to_voltage,
    transfers_to_clock_ns,
    voltage_to_logic,
)


class TestLogicVoltage:
    def test_round_trip(self):
        assert voltage_to_logic(logic_to_voltage(1)) == 1
        assert voltage_to_logic(logic_to_voltage(0)) == 0

    def test_rails(self):
        assert logic_to_voltage(1) == VDD
        assert logic_to_voltage(0) == GND

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            logic_to_voltage(2)

    def test_threshold_ties_to_zero(self):
        assert voltage_to_logic(VDD_HALF) == 0
        assert voltage_to_logic(VDD_HALF + 1e-9) == 1


class TestClock:
    def test_ddr4_2666(self):
        assert transfers_to_clock_ns(2666) == pytest.approx(0.750, abs=0.001)

    def test_ddr4_2400(self):
        assert transfers_to_clock_ns(2400) == pytest.approx(0.833, abs=0.001)

    def test_ddr4_2133(self):
        assert transfers_to_clock_ns(2133) == pytest.approx(0.938, abs=0.001)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            transfers_to_clock_ns(0)
