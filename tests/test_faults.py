"""Tests for the deterministic fault injector (`repro.faults`).

The load-bearing property is determinism: a fault plan is a pure
function from (seed, injection site, scope, occurrence, attempt) to
decisions, so the same plan always produces the same fault schedule —
and an all-zero plan is indistinguishable from no plan at all.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TransientInfrastructureError
from repro.faults import FaultInjector, FaultPlan


class TestFaultPlanValidation:
    def test_default_plan_is_inactive(self):
        plan = FaultPlan()
        assert not plan.active
        assert not plan.bench_active

    @pytest.mark.parametrize(
        "field", ["host_timeout_rate", "thermal_dropout_rate", "stuck_row_rate"]
    )
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, field, bad):
        with pytest.raises(ConfigurationError):
            FaultPlan(**{field: bad})

    def test_negative_overshoot_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(thermal_overshoot_c=-1.0)

    def test_lists_coerced_to_tuples(self):
        plan = FaultPlan(broken_targets=["a"], kill_chunk_indices=[3])
        assert plan.broken_targets == ("a",)
        assert plan.kill_chunk_indices == (3,)

    def test_broken_targets_make_plan_active_but_not_bench_active(self):
        plan = FaultPlan(broken_targets=("x",))
        assert plan.active
        assert not plan.bench_active


class TestFaultPlanSerialization:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            seed=7,
            host_timeout_rate=0.01,
            thermal_dropout_rate=0.2,
            broken_targets=("hynix", "samsung"),
            kill_chunk_indices=(0, 4),
            flaky_targets=("elpida",),
            flaky_target_attempts=2,
        )
        path = tmp_path / "plan.json"
        plan.save(str(path))
        assert FaultPlan.load(str(path)) == plan

    def test_load_rejects_unknown_fields(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"seed": 0, "flux_capacitor_rate": 1.0}')
        with pytest.raises(ConfigurationError, match="unknown"):
            FaultPlan.load(str(path))

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            FaultPlan.load(str(path))

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ConfigurationError, match="JSON object"):
            FaultPlan.load(str(path))


def _drive(injector: FaultInjector, programs: int = 200) -> list:
    """Run a fixed call sequence against an injector, collecting faults."""
    fired = []
    for i in range(programs):
        try:
            injector.on_program(f"prog-{i}")
        except TransientInfrastructureError:
            fired.append(i)
    return fired


class TestInjectorDeterminism:
    def test_same_plan_same_schedule(self):
        plan = FaultPlan(seed=11, host_timeout_rate=0.05)
        a = _drive(plan.injector("spec", "module-0"))
        b = _drive(plan.injector("spec", "module-0"))
        assert a == b
        assert a  # 200 programs at 5% should fire at least once

    def test_different_seed_different_schedule(self):
        a = _drive(FaultPlan(seed=1, host_timeout_rate=0.05).injector("m"))
        b = _drive(FaultPlan(seed=2, host_timeout_rate=0.05).injector("m"))
        assert a != b

    def test_different_scope_different_schedule(self):
        plan = FaultPlan(seed=11, host_timeout_rate=0.05)
        a = _drive(plan.injector("spec", "module-0"))
        b = _drive(plan.injector("spec", "module-1"))
        assert a != b

    def test_retry_attempt_reshuffles_transient_faults(self):
        # An abort-style fault from attempt 0 must not recur at the same
        # occurrence on attempt 1 with probability 1 — the attempt is
        # part of the hash, which is what makes retries converge.
        plan = FaultPlan(seed=11, host_timeout_rate=0.05)
        a = _drive(plan.injector("m", attempt=0))
        b = _drive(plan.injector("m", attempt=1))
        assert a != b

    def test_events_logged(self):
        plan = FaultPlan(seed=11, host_timeout_rate=1.0)
        injector = plan.injector("m")
        with pytest.raises(TransientInfrastructureError):
            injector.on_program("boom")
        assert injector.count("host-timeout") == 1
        assert "boom" in injector.events[0].detail


class TestCellFaults:
    def _bits(self, size=64):
        return np.zeros(size, dtype=np.uint8)

    def test_stuck_cell_is_attempt_and_occurrence_independent(self):
        # A stuck cell is physical: every injector for the same module
        # scope sees the same corruption, on every read, every attempt.
        # Drive both all-zeros and all-ones backgrounds — a cell stuck
        # at v is only visible against the ~v background.
        plan = FaultPlan(seed=3, stuck_row_rate=1.0)
        zeros, ones = self._bits(), self._bits() + 1
        reads = []
        for attempt in (0, 1, 5):
            injector = plan.injector("spec", "module-0", attempt=attempt)
            for _ in range(3):
                reads.append(
                    (injector.filter_read(0, 7, zeros),
                     injector.filter_read(0, 7, ones))
                )
        z0, o0 = reads[0]
        assert (z0 != zeros).any() or (o0 != ones).any()  # visible somewhere
        for z, o in reads[1:]:
            assert np.array_equal(z0, z) and np.array_equal(o0, o)

    def test_stuck_cell_forces_one_column_to_fixed_value(self):
        plan = FaultPlan(seed=3, stuck_row_rate=1.0)
        injector = plan.injector("spec", "module-0")
        z = injector.filter_read(0, 7, self._bits())
        o = injector.filter_read(0, 7, self._bits() + 1)
        # Exactly one column disagrees with its background across the
        # two reads, and it holds the same value in both.
        diff_z = np.flatnonzero(z != 0)
        diff_o = np.flatnonzero(o != 1)
        assert len(diff_z) + len(diff_o) == 1
        column = int((list(diff_z) + list(diff_o))[0])
        assert z[column] == o[column]

    def test_flaky_read_advances_with_occurrence(self):
        # Unlike a stuck cell, a flaky read redraws per occurrence: over
        # many reads of the same row some must corrupt and some must not.
        plan = FaultPlan(seed=3, flaky_read_rate=0.3)
        injector = plan.injector("spec", "module-0")
        outcomes = {
            bool((injector.filter_read(0, 7, self._bits()) != 0).any())
            for _ in range(50)
        }
        assert outcomes == {True, False}

    def test_inactive_plan_returns_input_unchanged(self):
        plan = FaultPlan()
        injector = plan.injector("m")
        bits = self._bits()
        assert injector.filter_read(0, 0, bits) is bits


class TestTargetMatching:
    def test_broken_target_fails_every_attempt(self):
        plan = FaultPlan(broken_targets=("hynix-4gb",))
        label = "hynix-4gb-m-x8-2666[0] bank0 pair(0, 1)"
        for attempt in range(5):
            assert plan.target_fault(label, attempt) is not None
        assert plan.target_fault("samsung-8gb[0] bank0 pair(0, 1)", 0) is None

    def test_flaky_target_recovers_after_n_attempts(self):
        plan = FaultPlan(flaky_targets=("samsung",), flaky_target_attempts=2)
        label = "samsung-8gb-b-x8-2133[0] bank0 pair(0, 1)"
        assert plan.target_fault(label, 0) is not None
        assert plan.target_fault(label, 1) is not None
        assert plan.target_fault(label, 2) is None

    def test_worker_death_kill_list_first_attempt_only(self):
        plan = FaultPlan(kill_chunk_indices=(4,))
        assert plan.worker_death_due(4, 0)
        assert not plan.worker_death_due(4, 1)
        assert not plan.worker_death_due(0, 0)

    def test_worker_death_rate_is_deterministic(self):
        plan = FaultPlan(seed=9, worker_death_rate=0.5)
        decisions = [plan.worker_death_due(i, 0) for i in range(20)]
        assert decisions == [plan.worker_death_due(i, 0) for i in range(20)]
        assert True in decisions and False in decisions
