"""Tests for the runtime's bounded-error (reliability) layer.

Covers the quarantine-clamp regression, the reliability counters in
:class:`RuntimeStats` and per-tenant accounting, mitigated NOT, and the
``submit_job(..., error_bound=...)`` path end to end — including the
acceptance scenario: a bitmap-index AND scan round-tripping under an
injected flaky-read fault plan with votes and retries visible in the
stats, and a typed :class:`ReliabilityUnsatisfiableError` when no block
can meet the bound.
"""

import numpy as np
import pytest

from repro.errors import (
    ReliabilityError,
    ReliabilityUnsatisfiableError,
    ReproError,
)
from repro.faults import FaultPlan
from repro.reliability import MitigationScheme, PolicyEntry, PolicyTable
from repro.substrate import SubstrateBackend
from repro.system import PudRuntime, RuntimeStats, TenantStats


class EstimateStub(SubstrateBackend):
    """A backend serving canned per-fan-in probability estimates."""

    name = "estimate-stub"

    def __init__(self, estimates):
        self._estimates = dict(estimates)

    def find_not_measurement(self, target, n_destination, kind=None, regions=None):
        return None

    def find_logic_measurement(self, target, base_op, n_inputs, regions=None):
        return None

    def not_measurement_at(self, host, bank, src_row, dst_row):
        raise NotImplementedError

    def logic_measurement_at(self, host, bank, ref_row, com_row, base_op="and"):
        raise NotImplementedError

    def probability(
        self, operation, fan_in, temperature_c=50.0, pattern="random",
        spec_name=None, distance="any",
    ):
        return self._estimates.get(fan_in)


def entry(scheme, bound=1e-3):
    return PolicyEntry(
        scheme=scheme,
        probability=0.9,
        predicted_error=2e-4,
        expected_cost=float(scheme.votes),
        error_bound=bound,
    )


@pytest.fixture()
def runtime(ideal_host):
    return PudRuntime(ideal_host, bank=0, subarray_pair=(0, 1))


def vectors(runtime, count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 2, runtime.lane_count, dtype=np.uint8)
        for _ in range(count)
    ]


class TestQuarantineClamp:
    def test_oversized_fan_in_clamped_with_warning(self, runtime):
        # Regression: quarantining "the biggest block" with a too-large
        # fan-in must clamp to the largest available one, not silently
        # miss (and not raise).
        with pytest.warns(UserWarning, match="clamping to the largest"):
            runtime.quarantine_block(1, 32)
        assert (1, 16) in runtime.quarantined_blocks()
        assert (1, 32) not in runtime.quarantined_blocks()

    def test_invalid_mid_range_fan_in_still_rejected(self, runtime):
        with pytest.raises(ReproError, match="no operation block"):
            runtime.quarantine_block(1, 3)
        assert not runtime.quarantined_blocks()

    def test_clamped_quarantine_excludes_block_from_placement(self, runtime):
        with pytest.warns(UserWarning):
            runtime.quarantine_block(1, 32)
        operands = vectors(runtime, 16, seed=5)
        # Fan-in 16 on side 1 is out; the job must fail over to side 0.
        result = runtime.submit_job("and", operands)
        assert result.block == (0, 16)


class TestStatsDisplay:
    def test_reliability_counters_hidden_when_zero(self):
        assert "reliability" not in str(RuntimeStats())

    def test_reliability_counters_shown_when_nonzero(self):
        stats = RuntimeStats(
            encoded_jobs=2, votes_cast=6, op_retries=1, mitigation_fallbacks=3
        )
        text = str(stats)
        assert "reliability: 2 encoded jobs" in text
        assert "6 votes" in text
        assert "1 retries" in text
        assert "3 fallbacks" in text

    def test_tenant_slices_auto_create_and_describe_sorted(self):
        stats = RuntimeStats()
        stats.tenant("web").jobs += 1
        stats.tenant("analytics").votes_cast += 3
        assert stats.tenant("web") is stats.per_tenant["web"]
        lines = stats.describe_tenants()
        assert len(lines) == 2
        assert lines[0].startswith("analytics: ")
        assert lines[1].startswith("web: ")
        assert "3 votes" in lines[0]

    def test_tenant_str_covers_all_counters(self):
        tenant = TenantStats(
            jobs=4, encoded_jobs=2, logic_ops=9, votes_cast=6,
            op_retries=1, host_transfers=2,
        )
        text = str(tenant)
        assert "4 jobs (2 encoded)" in text
        assert "9 logic ops" in text
        assert "1 retries" in text


class TestMitigatedNot:
    def test_voted_not_is_correct_and_counted(self, runtime):
        (bits,) = vectors(runtime, 1, seed=7)
        handle = runtime.store(bits)
        out = runtime.not_(handle, scheme=MitigationScheme(votes=3))
        assert out.side == 1 - handle.side
        assert np.array_equal(runtime.load(out), 1 - bits)
        assert runtime.stats.votes_cast == 3
        assert runtime.stats.not_ops == 3
        assert runtime.stats.host_transfers == 1  # the decided re-stage

    def test_uncoded_scheme_matches_plain_not(self, runtime):
        (bits,) = vectors(runtime, 1, seed=8)
        plain = runtime.load(runtime.not_(runtime.store(bits)))
        uncoded = runtime.load(
            runtime.not_(runtime.store(bits), scheme=MitigationScheme())
        )
        assert np.array_equal(plain, uncoded)
        assert runtime.stats.votes_cast == 0

    def test_retry_scheme_rejected_for_not(self, runtime):
        handle = runtime.store(vectors(runtime, 1)[0])
        with pytest.raises(ReliabilityError, match="complement terminal"):
            runtime.not_(handle, scheme=MitigationScheme(max_attempts=2))


class TestBoundedJobs:
    def test_policy_table_drives_scheme(self, ideal_host):
        table = PolicyTable()
        table.set(
            ("and", 2, "any", 50.0), entry(MitigationScheme(votes=3))
        )
        runtime = PudRuntime(ideal_host, policy=table)
        a, b = vectors(runtime, 2, seed=9)
        result = runtime.submit_job("and", [a, b], error_bound=1e-3)
        assert result.scheme == "vote3"
        assert result.votes == 3
        assert np.array_equal(result.output, a & b)
        assert runtime.stats.encoded_jobs == 1
        assert runtime.stats.votes_cast == 3

    def test_tighter_bound_than_tuned_is_an_error_without_estimates(
        self, ideal_host
    ):
        table = PolicyTable()
        table.set(
            ("and", 2, "any", 50.0),
            entry(MitigationScheme(votes=3), bound=1e-3),
        )
        runtime = PudRuntime(ideal_host, policy=table)
        a, b = vectors(runtime, 2)
        # The tuned cell guarantees 1e-3, not 1e-6; with no backend to
        # re-select on the fly, the runtime must refuse, not degrade.
        with pytest.raises(ReliabilityError, match="re-tune"):
            runtime.submit_job("and", [a, b], error_bound=1e-6)

    def test_no_policy_no_estimates_is_an_error(self, runtime):
        a, b = vectors(runtime, 2)
        with pytest.raises(ReliabilityError, match="policy table or a backend"):
            runtime.submit_job("and", [a, b], error_bound=1e-3)

    def test_estimates_select_scheme_on_the_fly(self, ideal_host):
        runtime = PudRuntime(
            ideal_host,
            backend=EstimateStub({2: 0.95, 4: 0.95, 8: 0.95, 16: 0.95}),
        )
        a, b = vectors(runtime, 2, seed=10)
        result = runtime.submit_job("or", [a, b], error_bound=1e-3)
        assert result.scheme is not None and result.scheme != "uncoded"
        assert np.array_equal(result.output, a | b)

    def test_unsatisfiable_bound_raises_typed(self, ideal_host):
        # 0.55: hopeless for every scheme in the grid; and the fan-in-8
        # and -16 AND blocks are statically infeasible (Observation 14).
        runtime = PudRuntime(
            ideal_host,
            backend=EstimateStub({2: 0.55, 4: 0.55, 8: 0.55, 16: 0.55}),
        )
        a, b = vectors(runtime, 2, seed=11)
        with pytest.raises(ReliabilityUnsatisfiableError) as excinfo:
            runtime.submit_job("and", [a, b], error_bound=1e-3)
        error = excinfo.value
        assert error.operation == "and"
        assert error.fan_in == 2
        assert error.error_bound == 1e-3
        assert error.best_error is not None and error.best_error > 1e-3
        # Every candidate block on both sides was tried and skipped.
        assert runtime.stats.mitigation_fallbacks == 8

    def test_legacy_path_leaves_reliability_counters_untouched(self, runtime):
        a, b = vectors(runtime, 2, seed=12)
        result = runtime.submit_job("and", [a, b])
        assert result.scheme is None
        assert result.votes == 0
        assert runtime.stats.encoded_jobs == 0
        assert runtime.stats.votes_cast == 0
        assert "reliability" not in str(runtime.stats)


class TestFaultInjectedRoundTrip:
    """The ISSUE acceptance scenario: a bitmap-index AND scan under an
    injected flaky-read plan, round-tripping with retries and votes
    visible in the stats.  The plan is deterministic (seed-hashed), so
    the counts below are exact."""

    FAULT_SEED = 3  # fires 3 flaky reads, 2 of them caught by retry

    @pytest.fixture()
    def faulted_runtime(self, ideal_module):
        from repro.bender import DramBenderHost

        plan = FaultPlan(seed=self.FAULT_SEED, flaky_read_rate=0.25)
        self.injector = plan.injector("runtime-test")
        host = DramBenderHost(ideal_module, fault_injector=self.injector)
        table = PolicyTable()
        table.set(
            ("and", 4, "any", 50.0),
            entry(MitigationScheme(votes=3, max_attempts=2)),
        )
        return PudRuntime(host, policy=table)

    def test_bitmap_scan_round_trips_with_retries_visible(
        self, faulted_runtime
    ):
        runtime = faulted_runtime
        bitmaps = vectors(runtime, 4, seed=3)
        result = runtime.submit_job(
            "and", bitmaps, error_bound=1e-3, tenant="index-scan"
        )
        expected = bitmaps[0] & bitmaps[1] & bitmaps[2] & bitmaps[3]
        assert np.array_equal(result.output, expected)
        assert result.scheme == "vote3+retry2"
        assert result.block == (1, 4)

        stats = runtime.stats
        assert self.injector.count("flaky-read") == 3  # the plan fired
        assert stats.encoded_jobs == 1
        assert stats.votes_cast == 3
        assert stats.op_retries == 2  # corrupted reads caught and retried
        assert "reliability: 1 encoded jobs, 3 votes, 2 retries" in str(stats)

        tenant = stats.per_tenant["index-scan"]
        assert tenant.jobs == 1
        assert tenant.encoded_jobs == 1
        assert tenant.votes_cast == 3
        assert tenant.op_retries == 2
        assert tenant.logic_ops == 3 + 2  # one per vote plus the retries
        assert tenant.host_transfers == 1

    def test_slots_released_after_bounded_job(self, faulted_runtime):
        runtime = faulted_runtime
        before = runtime.free_slots()
        runtime.submit_job(
            "and", vectors(runtime, 4, seed=3), error_bound=1e-3
        )
        assert runtime.free_slots() == before
