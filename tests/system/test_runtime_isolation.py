"""Tests for the runtime's pre-admission isolation gate.

``PudRuntime.submit_job`` consults the concurrency rule catalogue
(CC404/CC405/CC407) *before* touching any runtime state; the
``verify_isolation`` mode decides whether findings warn, refuse
(:class:`repro.errors.IsolationError`), or are skipped.  The quarantine
clamp warning is likewise a structured CC411 diagnostic now.
"""

import warnings

import numpy as np
import pytest

from repro.errors import IsolationError, ReproError
from repro.system import PudRuntime
from repro.system.runtime import ISOLATION_MODES, quarantine_clamp_diagnostic

PAIR_ALLOC = {"alice": [(0, 0), (0, 1)]}


def _vectors(runtime, count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 2, runtime.lane_count, dtype=np.uint8)
        for _ in range(count)
    ]


def _runtime(ideal_host, **kwargs):
    return PudRuntime(ideal_host, bank=0, subarray_pair=(0, 1), **kwargs)


class TestModeSelection:
    def test_modes_catalogued(self):
        assert ISOLATION_MODES == ("warn", "error", "off")

    def test_invalid_mode_rejected(self, ideal_host):
        with pytest.raises(ReproError, match="verify_isolation"):
            _runtime(ideal_host, verify_isolation="strict")

    def test_default_mode_is_warn(self, ideal_host):
        assert _runtime(ideal_host).verify_isolation == "warn"


class TestErrorMode:
    def test_unknown_tenant_refused_cc407(self, ideal_host):
        runtime = _runtime(
            ideal_host, verify_isolation="error", allocations=PAIR_ALLOC
        )
        with pytest.raises(IsolationError) as excinfo:
            runtime.submit_job("and", _vectors(runtime, 2), tenant="mallory")
        rules = {d.rule for d in excinfo.value.diagnostics}
        assert rules == {"CC407"}

    def test_anonymous_job_refused_when_allocations_set(self, ideal_host):
        runtime = _runtime(
            ideal_host, verify_isolation="error", allocations=PAIR_ALLOC
        )
        with pytest.raises(IsolationError):
            runtime.submit_job("and", _vectors(runtime, 2))

    def test_partial_pair_ownership_refused_cc404(self, ideal_host):
        runtime = _runtime(
            ideal_host,
            verify_isolation="error",
            allocations={"alice": [(0, 0)]},  # owns one terminal only
        )
        with pytest.raises(IsolationError) as excinfo:
            runtime.submit_job("and", _vectors(runtime, 2), tenant="alice")
        rules = {d.rule for d in excinfo.value.diagnostics}
        assert rules == {"CC404"}

    def test_all_blocks_quarantined_refused_cc405(self, ideal_host):
        runtime = _runtime(ideal_host, verify_isolation="error")
        for side in (0, 1):
            for n in (2, 4, 8, 16):
                runtime.quarantine_block(side, n)
        with pytest.raises(IsolationError) as excinfo:
            runtime.submit_job("and", _vectors(runtime, 2))
        rules = {d.rule for d in excinfo.value.diagnostics}
        assert rules == {"CC405"}

    def test_refusal_leaves_runtime_state_untouched(self, ideal_host):
        runtime = _runtime(
            ideal_host, verify_isolation="error", allocations=PAIR_ALLOC
        )
        slots_before = runtime.free_slots()
        with pytest.raises(IsolationError):
            runtime.submit_job("and", _vectors(runtime, 2), tenant="mallory")
        assert runtime.free_slots() == slots_before
        assert runtime.stats.jobs_submitted == 0
        assert runtime.stats.logic_ops == 0
        assert runtime.stats.host_transfers == 0
        assert runtime.stats.isolation_refusals == 1

    def test_per_tenant_refusal_counter(self, ideal_host):
        runtime = _runtime(
            ideal_host, verify_isolation="error", allocations=PAIR_ALLOC
        )
        for _ in range(2):
            with pytest.raises(IsolationError):
                runtime.submit_job(
                    "and", _vectors(runtime, 2), tenant="mallory"
                )
        slice_ = runtime.stats.tenant("mallory")
        assert slice_.isolation_refusals == 2
        assert "2 refusals" in str(slice_)

    def test_owning_tenant_admits_and_runs(self, ideal_host):
        runtime = _runtime(
            ideal_host, verify_isolation="error", allocations=PAIR_ALLOC
        )
        operands = _vectors(runtime, 2, seed=5)
        result = runtime.submit_job("and", operands, tenant="alice")
        expected = operands[0] & operands[1]
        assert np.array_equal(result.output, expected)
        assert runtime.stats.isolation_refusals == 0
        assert runtime.stats.jobs_submitted == 1


class TestWarnMode:
    def test_finding_warns_but_job_runs(self, ideal_host):
        runtime = _runtime(ideal_host, allocations=PAIR_ALLOC)
        operands = _vectors(runtime, 2, seed=6)
        with pytest.warns(UserWarning, match="CC407"):
            result = runtime.submit_job(
                "and", operands, tenant="mallory"
            )
        assert np.array_equal(result.output, operands[0] & operands[1])
        assert runtime.stats.isolation_warnings == 1
        assert runtime.stats.tenant("mallory").isolation_warnings == 1
        assert runtime.stats.jobs_submitted == 1

    def test_clean_submission_does_not_warn(self, ideal_host):
        runtime = _runtime(ideal_host, allocations=PAIR_ALLOC)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            runtime.submit_job(
                "and", _vectors(runtime, 2, seed=7), tenant="alice"
            )
        assert runtime.stats.isolation_warnings == 0


class TestOffMode:
    def test_gate_disabled(self, ideal_host):
        runtime = _runtime(
            ideal_host, verify_isolation="off", allocations=PAIR_ALLOC
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            runtime.submit_job(
                "and", _vectors(runtime, 2, seed=8), tenant="mallory"
            )
        assert runtime.stats.isolation_warnings == 0
        assert runtime.stats.isolation_refusals == 0


class TestQuarantineClamp:
    def test_clamp_emits_structured_cc411(self, ideal_host):
        runtime = _runtime(ideal_host)
        with pytest.warns(UserWarning, match="CC411") as record:
            runtime.quarantine_block(1, 32)
        assert "clamping" in str(record[0].message)
        assert runtime.stats.quarantine_clamps == 1
        assert (1, 16) in runtime.quarantined_blocks()

    def test_diagnostic_shape(self):
        diagnostic = quarantine_clamp_diagnostic(side=1, requested=32, clamped=16)
        assert diagnostic.rule == "CC411"
        assert "side 1" in diagnostic.message
        assert diagnostic.hint

    def test_exact_block_does_not_clamp(self, ideal_host):
        runtime = _runtime(ideal_host)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            runtime.quarantine_block(1, 16)
        assert runtime.stats.quarantine_clamps == 0


class TestBoundedJobsGate:
    def test_bounded_path_also_gated(self, ideal_host):
        # error_bound jobs go through the same admission check.
        runtime = _runtime(
            ideal_host, verify_isolation="error", allocations=PAIR_ALLOC
        )
        with pytest.raises(IsolationError):
            runtime.submit_job(
                "and",
                _vectors(runtime, 2, seed=9),
                error_bound=0.5,
                tenant="mallory",
            )
        assert runtime.stats.encoded_jobs == 0
