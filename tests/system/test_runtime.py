"""Tests for the end-to-end PuD runtime.

Covers vector storage, in-DRAM computation and movement, accounting,
and the service layer: verified job submission, reliability-aware
placement (backend probability estimates), and quarantine-aware
failover.
"""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.substrate import SubstrateBackend
from repro.system import PudRuntime, RuntimeStats, VectorHandle


class EstimateStub(SubstrateBackend):
    """A backend serving canned per-fan-in probability estimates."""

    name = "estimate-stub"

    def __init__(self, estimates):
        self._estimates = dict(estimates)

    def find_not_measurement(self, target, n_destination, kind=None, regions=None):
        return None

    def find_logic_measurement(self, target, base_op, n_inputs, regions=None):
        return None

    def not_measurement_at(self, host, bank, src_row, dst_row):
        raise NotImplementedError

    def logic_measurement_at(self, host, bank, ref_row, com_row, base_op="and"):
        raise NotImplementedError

    def probability(
        self, operation, fan_in, temperature_c=50.0, pattern="random",
        spec_name=None, distance="any",
    ):
        return self._estimates.get(fan_in)


@pytest.fixture()
def runtime(ideal_host):
    return PudRuntime(ideal_host, bank=0, subarray_pair=(0, 1))


def vectors(runtime, count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 2, runtime.lane_count, dtype=np.uint8)
        for _ in range(count)
    ]


class TestStorage:
    def test_store_load_round_trip(self, runtime):
        (bits,) = vectors(runtime, 1, seed=1)
        handle = runtime.store(bits)
        assert np.array_equal(runtime.load(handle), bits)

    def test_store_both_sides(self, runtime):
        (bits,) = vectors(runtime, 1, seed=2)
        for side in (0, 1):
            handle = runtime.store(bits, side=side)
            assert handle.side == side
            assert np.array_equal(runtime.load(handle), bits)

    def test_free_returns_slot(self, runtime):
        before = runtime.free_slots(1)
        handle = runtime.store(vectors(runtime, 1)[0])
        assert runtime.free_slots(1) == before - 1
        runtime.free(handle)
        assert runtime.free_slots(1) == before

    def test_double_free_rejected(self, runtime):
        handle = runtime.store(vectors(runtime, 1)[0])
        runtime.free(handle)
        with pytest.raises(ReproError):
            runtime.free(handle)

    def test_load_after_free_rejected(self, runtime):
        handle = runtime.store(vectors(runtime, 1)[0])
        runtime.free(handle)
        with pytest.raises(ReproError):
            runtime.load(handle)

    def test_exhaustion_raises(self, runtime):
        with pytest.raises(ReproError):
            for _ in range(10_000):
                runtime.store(vectors(runtime, 1)[0])

    def test_wrong_width_rejected(self, runtime):
        with pytest.raises(ValueError):
            runtime.store(np.zeros(3, dtype=np.uint8))

    def test_handles_are_unique(self, runtime):
        a = runtime.store(vectors(runtime, 1)[0])
        runtime.free(a)
        b = runtime.store(vectors(runtime, 1)[0])
        # The slot may be reused, but the handle must not compare equal.
        assert a != b


class TestComputation:
    def test_and_or(self, runtime):
        a_bits, b_bits = vectors(runtime, 2, seed=3)
        a, b = runtime.store(a_bits), runtime.store(b_bits)
        assert np.array_equal(runtime.load(runtime.and_(a, b)), a_bits & b_bits)
        assert np.array_equal(runtime.load(runtime.or_(a, b)), a_bits | b_bits)

    def test_nand_nor_land_on_other_side(self, runtime):
        a_bits, b_bits = vectors(runtime, 2, seed=4)
        a, b = runtime.store(a_bits), runtime.store(b_bits)
        result = runtime.nand(a, b)
        assert result.side == 0  # operands on side 1, complement side 0
        assert np.array_equal(runtime.load(result), 1 - (a_bits & b_bits))
        result = runtime.nor(a, b)
        assert np.array_equal(runtime.load(result), 1 - (a_bits | b_bits))

    def test_many_input_with_padding(self, runtime):
        operands = vectors(runtime, 5, seed=5)
        handles = [runtime.store(bits) for bits in operands]
        expected = operands[0].copy()
        for bits in operands[1:]:
            expected &= bits
        assert np.array_equal(
            runtime.load(runtime.and_(*handles)), expected
        )

    def test_not_crosses_and_inverts(self, runtime):
        (bits,) = vectors(runtime, 1, seed=6)
        handle = runtime.store(bits, side=1)
        result = runtime.not_(handle)
        assert result.side == 0
        assert np.array_equal(runtime.load(result), 1 - bits)

    def test_xor(self, runtime):
        a_bits, b_bits = vectors(runtime, 2, seed=7)
        a, b = runtime.store(a_bits), runtime.store(b_bits)
        assert np.array_equal(runtime.load(runtime.xor(a, b)), a_bits ^ b_bits)

    def test_mixed_side_operands_colocated(self, runtime):
        a_bits, b_bits = vectors(runtime, 2, seed=8)
        a = runtime.store(a_bits, side=0)
        b = runtime.store(b_bits, side=1)
        result = runtime.and_(a, b)
        assert np.array_equal(runtime.load(result), a_bits & b_bits)
        assert runtime.stats.host_transfers >= 1

    def test_operations_do_not_corrupt_stored_vectors(self, runtime):
        stored = vectors(runtime, 6, seed=9)
        handles = [runtime.store(bits) for bits in stored]
        runtime.and_(handles[0], handles[1])
        runtime.xor(handles[2], handles[3])
        runtime.not_(handles[4])
        for handle, bits in zip(handles, stored):
            assert np.array_equal(runtime.load(handle), bits)


class TestMovement:
    def test_move_preserves_value(self, runtime):
        (bits,) = vectors(runtime, 1, seed=10)
        handle = runtime.store(bits, side=1)
        moved = runtime.move(handle, 0)
        assert moved.side == 0
        assert np.array_equal(runtime.load(moved), bits)

    def test_move_same_side_is_free(self, runtime):
        handle = runtime.store(vectors(runtime, 1)[0], side=1)
        before = runtime.stats.host_transfers
        assert runtime.move(handle, 1) is handle
        assert runtime.stats.host_transfers == before

    def test_cross_side_move_costs_a_host_transfer(self, runtime):
        handle = runtime.store(vectors(runtime, 1)[0], side=1)
        before = runtime.stats.host_transfers
        runtime.move(handle, 0)
        assert runtime.stats.host_transfers == before + 1


class TestAccounting:
    def test_stats_count_primitives(self, runtime):
        a_bits, b_bits = vectors(runtime, 2, seed=11)
        a, b = runtime.store(a_bits), runtime.store(b_bits)
        runtime.and_(a, b)
        stats = runtime.stats
        assert stats.logic_ops == 1
        assert stats.rowclones >= 2  # operands in, result out
        assert stats.total_programs == (
            stats.logic_ops + stats.not_ops + stats.rowclones
        )

    def test_xor_costs_three_logic_ops(self, runtime):
        a_bits, b_bits = vectors(runtime, 2, seed=12)
        a, b = runtime.store(a_bits), runtime.store(b_bits)
        before = runtime.stats.logic_ops
        runtime.xor(a, b)
        assert runtime.stats.logic_ops - before == 3

    def test_runtime_stats_repr(self):
        text = str(RuntimeStats(logic_ops=2, not_ops=1, rowclones=5))
        assert "2 logic ops" in text


class TestJobSubmission:
    def test_and_job_verifies_first_try(self, runtime):
        a_bits, b_bits = vectors(runtime, 2, seed=20)
        result = runtime.submit_job("and", [a_bits, b_bits])
        assert np.array_equal(result.output, a_bits & b_bits)
        assert result.op == "and"
        assert result.attempts == 1
        assert result.quarantined == ()
        assert runtime.stats.jobs_submitted == 1
        assert runtime.stats.verify_failures == 0

    def test_complemented_ops_verify(self, runtime):
        a_bits, b_bits = vectors(runtime, 2, seed=21)
        nand = runtime.submit_job("nand", [a_bits, b_bits])
        assert np.array_equal(nand.output, 1 - (a_bits & b_bits))
        nor = runtime.submit_job("nor", [a_bits, b_bits])
        assert np.array_equal(nor.output, 1 - (a_bits | b_bits))

    def test_many_operand_job(self, runtime):
        operands = vectors(runtime, 3, seed=22)
        result = runtime.submit_job("or", operands)
        expected = operands[0] | operands[1] | operands[2]
        assert np.array_equal(result.output, expected)
        # 3 operands need a fan-in >= 4 block.
        assert result.block[1] >= 4

    def test_rejects_unsupported_op(self, runtime):
        operands = vectors(runtime, 2, seed=23)
        with pytest.raises(ReproError):
            runtime.submit_job("xor", operands)

    def test_rejects_single_operand(self, runtime):
        (bits,) = vectors(runtime, 1, seed=24)
        with pytest.raises(ReproError):
            runtime.submit_job("and", [bits])

    def test_rejects_bad_side(self, runtime):
        operands = vectors(runtime, 2, seed=25)
        with pytest.raises(ReproError):
            runtime.submit_job("and", operands, side=2)

    def test_job_releases_all_slots(self, runtime):
        before = runtime.free_slots()
        operands = vectors(runtime, 2, seed=26)
        runtime.submit_job("and", operands)
        assert runtime.free_slots() == before


class TestPlacement:
    def test_default_policy_is_smallest_sufficient_fan_in(self, runtime):
        operands = vectors(runtime, 2, seed=30)
        result = runtime.submit_job("and", operands)
        assert result.block == (1, 2)

    def test_backend_estimates_prefer_best_block(self, ideal_host):
        backend = EstimateStub({2: 0.7, 4: 0.8, 8: 0.95, 16: 0.9})
        runtime = PudRuntime(
            ideal_host, bank=0, subarray_pair=(0, 1), backend=backend
        )
        rng = np.random.default_rng(31)
        operands = [
            rng.integers(0, 2, runtime.lane_count, dtype=np.uint8)
            for _ in range(2)
        ]
        result = runtime.submit_job("and", operands)
        assert result.block == (1, 8)

    def test_estimate_ties_go_to_smallest_fan_in(self, ideal_host):
        backend = EstimateStub({2: 0.9, 4: 0.9, 8: 0.9, 16: 0.9})
        runtime = PudRuntime(
            ideal_host, bank=0, subarray_pair=(0, 1), backend=backend
        )
        rng = np.random.default_rng(32)
        operands = [
            rng.integers(0, 2, runtime.lane_count, dtype=np.uint8)
            for _ in range(2)
        ]
        assert runtime.submit_job("and", operands).block == (1, 2)

    def test_min_block_success_filters_candidates(self, ideal_host):
        backend = EstimateStub({2: 0.5, 4: 0.6, 8: 0.85, 16: 0.8})
        runtime = PudRuntime(
            ideal_host, bank=0, subarray_pair=(0, 1),
            backend=backend, min_block_success=0.75,
        )
        rng = np.random.default_rng(33)
        operands = [
            rng.integers(0, 2, runtime.lane_count, dtype=np.uint8)
            for _ in range(2)
        ]
        assert runtime.submit_job("and", operands).block == (1, 8)

    def test_block_estimate_is_none_without_backend(self, runtime):
        assert runtime.block_estimate(2) is None


class TestQuarantine:
    def test_quarantine_redirects_placement(self, runtime):
        runtime.quarantine_block(1, 2)
        operands = vectors(runtime, 2, seed=40)
        result = runtime.submit_job("and", operands)
        assert result.block == (1, 4)
        assert runtime.quarantined_blocks() == {(1, 2)}

    def test_quarantine_unknown_block_rejected(self, runtime):
        with pytest.raises(ReproError):
            runtime.quarantine_block(1, 3)

    def test_failover_crosses_to_other_side(self, runtime):
        for n in (2, 4, 8, 16):
            runtime.quarantine_block(1, n)
        transfers_before = runtime.stats.host_transfers
        operands = vectors(runtime, 2, seed=41)
        result = runtime.submit_job("and", operands, side=1)
        assert result.block[0] == 0
        # Crossing re-stages each operand through the controller.
        assert runtime.stats.host_transfers == transfers_before + 2

    def test_no_eligible_block_anywhere_raises(self, runtime):
        for side in (0, 1):
            for n in (2, 4, 8, 16):
                runtime.quarantine_block(side, n)
        operands = vectors(runtime, 2, seed=42)
        with pytest.raises(ReproError, match="no eligible"):
            runtime.submit_job("and", operands)

    def test_noisy_die_quarantines_and_exhausts(self, real_host):
        # All-lane verification on a calibrated noisy die fails with
        # near certainty, so the job walks the failover chain and gives
        # up after max_failovers, leaving the failed blocks quarantined.
        runtime = PudRuntime(real_host, bank=0, subarray_pair=(0, 1))
        before = runtime.free_slots()
        rng = np.random.default_rng(43)
        operands = [
            rng.integers(0, 2, runtime.lane_count, dtype=np.uint8)
            for _ in range(2)
        ]
        with pytest.raises(ReproError, match="failed verification"):
            runtime.submit_job("and", operands, max_failovers=2)
        assert runtime.stats.verify_failures == 3
        assert runtime.stats.failovers == 2
        assert len(runtime.quarantined_blocks()) == 3
        # Slots still come back on failure.
        assert runtime.free_slots() == before


class TestRealChip:
    def test_runtime_works_on_calibrated_die(self, real_host):
        runtime = PudRuntime(real_host, bank=0, subarray_pair=(0, 1))
        rng = np.random.default_rng(13)
        a_bits = rng.integers(0, 2, runtime.lane_count, dtype=np.uint8)
        b_bits = rng.integers(0, 2, runtime.lane_count, dtype=np.uint8)
        a, b = runtime.store(a_bits), runtime.store(b_bits)
        result = runtime.load(runtime.and_(a, b))
        agreement = float(np.mean(result == (a_bits & b_bits)))
        assert agreement > 0.6  # imperfect, per the characterization
