"""Tests for the end-to-end PuD runtime."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.system import PudRuntime, RuntimeStats, VectorHandle


@pytest.fixture()
def runtime(ideal_host):
    return PudRuntime(ideal_host, bank=0, subarray_pair=(0, 1))


def vectors(runtime, count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 2, runtime.lane_count, dtype=np.uint8)
        for _ in range(count)
    ]


class TestStorage:
    def test_store_load_round_trip(self, runtime):
        (bits,) = vectors(runtime, 1, seed=1)
        handle = runtime.store(bits)
        assert np.array_equal(runtime.load(handle), bits)

    def test_store_both_sides(self, runtime):
        (bits,) = vectors(runtime, 1, seed=2)
        for side in (0, 1):
            handle = runtime.store(bits, side=side)
            assert handle.side == side
            assert np.array_equal(runtime.load(handle), bits)

    def test_free_returns_slot(self, runtime):
        before = runtime.free_slots(1)
        handle = runtime.store(vectors(runtime, 1)[0])
        assert runtime.free_slots(1) == before - 1
        runtime.free(handle)
        assert runtime.free_slots(1) == before

    def test_double_free_rejected(self, runtime):
        handle = runtime.store(vectors(runtime, 1)[0])
        runtime.free(handle)
        with pytest.raises(ReproError):
            runtime.free(handle)

    def test_load_after_free_rejected(self, runtime):
        handle = runtime.store(vectors(runtime, 1)[0])
        runtime.free(handle)
        with pytest.raises(ReproError):
            runtime.load(handle)

    def test_exhaustion_raises(self, runtime):
        with pytest.raises(ReproError):
            for _ in range(10_000):
                runtime.store(vectors(runtime, 1)[0])

    def test_wrong_width_rejected(self, runtime):
        with pytest.raises(ValueError):
            runtime.store(np.zeros(3, dtype=np.uint8))

    def test_handles_are_unique(self, runtime):
        a = runtime.store(vectors(runtime, 1)[0])
        runtime.free(a)
        b = runtime.store(vectors(runtime, 1)[0])
        # The slot may be reused, but the handle must not compare equal.
        assert a != b


class TestComputation:
    def test_and_or(self, runtime):
        a_bits, b_bits = vectors(runtime, 2, seed=3)
        a, b = runtime.store(a_bits), runtime.store(b_bits)
        assert np.array_equal(runtime.load(runtime.and_(a, b)), a_bits & b_bits)
        assert np.array_equal(runtime.load(runtime.or_(a, b)), a_bits | b_bits)

    def test_nand_nor_land_on_other_side(self, runtime):
        a_bits, b_bits = vectors(runtime, 2, seed=4)
        a, b = runtime.store(a_bits), runtime.store(b_bits)
        result = runtime.nand(a, b)
        assert result.side == 0  # operands on side 1, complement side 0
        assert np.array_equal(runtime.load(result), 1 - (a_bits & b_bits))
        result = runtime.nor(a, b)
        assert np.array_equal(runtime.load(result), 1 - (a_bits | b_bits))

    def test_many_input_with_padding(self, runtime):
        operands = vectors(runtime, 5, seed=5)
        handles = [runtime.store(bits) for bits in operands]
        expected = operands[0].copy()
        for bits in operands[1:]:
            expected &= bits
        assert np.array_equal(
            runtime.load(runtime.and_(*handles)), expected
        )

    def test_not_crosses_and_inverts(self, runtime):
        (bits,) = vectors(runtime, 1, seed=6)
        handle = runtime.store(bits, side=1)
        result = runtime.not_(handle)
        assert result.side == 0
        assert np.array_equal(runtime.load(result), 1 - bits)

    def test_xor(self, runtime):
        a_bits, b_bits = vectors(runtime, 2, seed=7)
        a, b = runtime.store(a_bits), runtime.store(b_bits)
        assert np.array_equal(runtime.load(runtime.xor(a, b)), a_bits ^ b_bits)

    def test_mixed_side_operands_colocated(self, runtime):
        a_bits, b_bits = vectors(runtime, 2, seed=8)
        a = runtime.store(a_bits, side=0)
        b = runtime.store(b_bits, side=1)
        result = runtime.and_(a, b)
        assert np.array_equal(runtime.load(result), a_bits & b_bits)
        assert runtime.stats.host_transfers >= 1

    def test_operations_do_not_corrupt_stored_vectors(self, runtime):
        stored = vectors(runtime, 6, seed=9)
        handles = [runtime.store(bits) for bits in stored]
        runtime.and_(handles[0], handles[1])
        runtime.xor(handles[2], handles[3])
        runtime.not_(handles[4])
        for handle, bits in zip(handles, stored):
            assert np.array_equal(runtime.load(handle), bits)


class TestMovement:
    def test_move_preserves_value(self, runtime):
        (bits,) = vectors(runtime, 1, seed=10)
        handle = runtime.store(bits, side=1)
        moved = runtime.move(handle, 0)
        assert moved.side == 0
        assert np.array_equal(runtime.load(moved), bits)

    def test_move_same_side_is_free(self, runtime):
        handle = runtime.store(vectors(runtime, 1)[0], side=1)
        before = runtime.stats.host_transfers
        assert runtime.move(handle, 1) is handle
        assert runtime.stats.host_transfers == before

    def test_cross_side_move_costs_a_host_transfer(self, runtime):
        handle = runtime.store(vectors(runtime, 1)[0], side=1)
        before = runtime.stats.host_transfers
        runtime.move(handle, 0)
        assert runtime.stats.host_transfers == before + 1


class TestAccounting:
    def test_stats_count_primitives(self, runtime):
        a_bits, b_bits = vectors(runtime, 2, seed=11)
        a, b = runtime.store(a_bits), runtime.store(b_bits)
        runtime.and_(a, b)
        stats = runtime.stats
        assert stats.logic_ops == 1
        assert stats.rowclones >= 2  # operands in, result out
        assert stats.total_programs == (
            stats.logic_ops + stats.not_ops + stats.rowclones
        )

    def test_xor_costs_three_logic_ops(self, runtime):
        a_bits, b_bits = vectors(runtime, 2, seed=12)
        a, b = runtime.store(a_bits), runtime.store(b_bits)
        before = runtime.stats.logic_ops
        runtime.xor(a, b)
        assert runtime.stats.logic_ops - before == 3

    def test_runtime_stats_repr(self):
        text = str(RuntimeStats(logic_ops=2, not_ops=1, rowclones=5))
        assert "2 logic ops" in text


class TestRealChip:
    def test_runtime_works_on_calibrated_die(self, real_host):
        runtime = PudRuntime(real_host, bank=0, subarray_pair=(0, 1))
        rng = np.random.default_rng(13)
        a_bits = rng.integers(0, 2, runtime.lane_count, dtype=np.uint8)
        b_bits = rng.integers(0, 2, runtime.lane_count, dtype=np.uint8)
        a, b = runtime.store(a_bits), runtime.store(b_bits)
        result = runtime.load(runtime.and_(a, b))
        agreement = float(np.mean(result == (a_bits & b_bits)))
        assert agreement > 0.6  # imperfect, per the characterization
