"""The symbolic charge-algebra evaluator: golden truth-table proofs.

Three layers of coverage:

* the :class:`SymValue` abstract domain itself (canonicalization,
  constants, don't-care elimination, the 16-variable cap);
* golden proofs for every sequences constructor — NOT, AND, OR, NAND,
  NOR at every supported fan-in, RowClone and Frac — against a real
  decoder-backed module;
* the analyzer's SEM3xx findings and the executor's ``verify_semantics``
  gate, including the program-level ``staticcheck: ignore[...]`` pragma.
"""

import numpy as np
import pytest

from repro import SeedTree
from repro.bender import DramBenderHost
from repro.bender.program import TestProgram
from repro.core.addressing import find_pattern_pair
from repro.core.layout import bank_rows
from repro.core.sequences import (
    frac_program,
    logic_program,
    nominal_activation_program,
    not_program,
    rowclone_program,
)
from repro.dram.analog import worst_case_sense_margin
from repro.dram.calibration import DieCalibration
from repro.dram.decoder import ActivationKind
from repro.dram.module import Module
from repro.dram.timing import timing_for_speed
from repro.errors import ProgramVerificationError, ReverseEngineeringError
from repro.staticcheck.semantics import (
    CONST0,
    CONST1,
    HALF,
    MAX_SUPPORT,
    UNKNOWN,
    SemanticAnalyzer,
    SymValue,
    prove_value,
    sym_and,
    sym_const,
    sym_majority,
    sym_nand,
    sym_nor,
    sym_not,
    sym_or,
    sym_var,
    sym_xor,
    table_from_outputs,
)

TIMING = timing_for_speed(2666)


# ----------------------------------------------------------------------
# the abstract domain
# ----------------------------------------------------------------------


class TestSymValueAlgebra:
    def test_variables_are_canonically_sorted(self):
        assert sym_and(sym_var("b"), sym_var("a")) == sym_and(
            sym_var("a"), sym_var("b")
        )
        assert sym_and(sym_var("a"), sym_var("b")).vars == ("a", "b")

    def test_equality_is_function_equality(self):
        a, b = sym_var("a"), sym_var("b")
        assert sym_not(sym_not(a)) == a
        # De Morgan.
        assert sym_nand(a, b) == sym_or(sym_not(a), sym_not(b))
        assert sym_nor(a, b) == sym_and(sym_not(a), sym_not(b))

    def test_dont_care_variables_are_dropped(self):
        a, b = sym_var("a"), sym_var("b")
        # a·b + a·¬b = a: support must shrink to {a}.
        value = sym_or(sym_and(a, b), sym_and(a, sym_not(b)))
        assert value == a
        assert value.vars == ("a",)

    def test_constant_absorption(self):
        a = sym_var("a")
        assert sym_and(a, CONST0) == CONST0
        assert sym_or(a, CONST1) == CONST1
        assert sym_and(a, CONST1) == a
        assert sym_or(a, CONST0) == a
        assert sym_not(CONST0) == CONST1
        assert sym_and(a, sym_not(a)) == CONST0
        assert sym_or(a, sym_not(a)) == CONST1

    def test_constants_are_recognized(self):
        assert CONST0.is_constant and CONST0.constant_value() == 0
        assert CONST1.is_constant and CONST1.constant_value() == 1
        assert not sym_var("a").is_constant
        assert sym_const(1) == CONST1

    def test_xor_and_majority_tables(self):
        a, b, c = sym_var("a"), sym_var("b"), sym_var("c")
        assert sym_xor(a, b).table == 0b0110
        assert sym_xor(a, a) == CONST0
        maj = sym_majority(a, b, c)
        # MAJ = ab + bc + ca.
        assert maj == sym_or(sym_and(a, b), sym_and(b, c), sym_and(c, a))

    def test_half_and_unknown_propagate(self):
        a = sym_var("a")
        assert sym_not(HALF) == HALF
        assert sym_not(UNKNOWN) == UNKNOWN
        assert sym_and(a, UNKNOWN) == UNKNOWN
        assert sym_or(a, HALF) == UNKNOWN
        assert not HALF.is_func and not UNKNOWN.is_func

    def test_support_cap(self):
        wide = sym_and(*[sym_var(f"x{i}") for i in range(MAX_SUPPORT)])
        assert wide.is_func and len(wide.vars) == MAX_SUPPORT
        over = sym_and(wide, sym_var("z"))
        assert over == UNKNOWN

    def test_describe_and_format_table(self):
        value = sym_and(sym_var("a"), sym_var("b"))
        assert value.describe() == "f(a, b) table=0x8"
        table = value.format_table()
        assert "a b" in table and table.strip().endswith("1 1 |  1")

    def test_table_from_outputs_round_trip(self):
        a, b = sym_var("a"), sym_var("b")
        outputs = np.array([0, 1, 1, 1], dtype=np.uint8)  # OR
        assert table_from_outputs(("a", "b"), outputs) == sym_or(a, b)

    def test_values_are_hashable_and_frozen(self):
        value = sym_var("a")
        assert hash(value) == hash(sym_var("a"))
        with pytest.raises(AttributeError):
            value.kind = "unknown"

    def test_prove_value_reports_sem301_with_both_tables(self):
        a, b = sym_var("a"), sym_var("b")
        failures = prove_value(sym_nor(a, b), sym_nand(a, b), "swap test")
        assert [d.rule for d in failures] == ["SEM301"]
        message = failures[0].message
        assert "0x1" in message and "0x7" in message
        assert prove_value(sym_nand(a, b), sym_nand(a, b), "ok") == []


# ----------------------------------------------------------------------
# golden proofs for every sequences constructor
# ----------------------------------------------------------------------


def _find_pair(module, n, kind=ActivationKind.N_TO_N, subarrays=(0, 1)):
    geometry = module.config.geometry
    for seed in range(40):
        try:
            return find_pattern_pair(
                module.decoder, geometry, 0, subarrays[0], subarrays[1], n,
                kind=kind, seed=seed,
            )
        except ReverseEngineeringError:
            continue
    pytest.skip(f"no {n}:{n} pattern pair on this decoder seed")


@pytest.fixture(scope="module")
def proof_module(request):
    from repro import sk_hynix_chip

    config = sk_hynix_chip().with_geometry(
        request.getfixturevalue("small_geometry")
    )
    return Module(config, chip_count=1, seed_tree=SeedTree(7))


@pytest.fixture(scope="module")
def analyzer(proof_module):
    return SemanticAnalyzer.for_module(proof_module)


class TestGoldenConstructorProofs:
    @pytest.mark.parametrize("family,combine", [("and", sym_and), ("or", sym_or)])
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_logic_family_truth_tables(
        self, proof_module, analyzer, family, combine, n
    ):
        """AND/OR on the compute terminal, NAND/NOR on the reference."""
        geometry = proof_module.config.geometry
        ref_row, com_row = _find_pair(proof_module, n)
        pattern = proof_module.decoder.neighboring_pattern(0, ref_row, com_row)
        ref_rows = bank_rows(geometry, pattern.subarray_first, pattern.rows_first)
        com_rows = bank_rows(geometry, pattern.subarray_last, pattern.rows_last)

        const = CONST1 if family == "and" else CONST0
        inputs = [sym_var(f"x{i}") for i in range(n)]
        session = analyzer.new_session()
        for row in ref_rows[:-1]:
            session.set_value(0, row, const)
        session.set_value(0, ref_rows[-1], HALF)
        for value, row in zip(inputs, com_rows):
            session.set_value(0, row, value)

        report = analyzer.analyze_program(
            logic_program(TIMING, 0, ref_row, com_row), session
        )
        assert list(report.errors) == [], [d.format() for d in report.errors]

        expected = combine(*inputs)
        complement = sym_not(expected)  # NAND for AND, NOR for OR
        for row in com_rows:
            assert prove_value(
                session.value_of(0, row), expected, f"compute row {row}"
            ) == []
        for row in ref_rows:
            assert prove_value(
                session.value_of(0, row), complement, f"reference row {row}"
            ) == []
        assert len(report.episodes) == 1
        episode = report.episodes[0]
        assert episode.inferred_op == family
        assert episode.margin is not None

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_not_truth_tables(self, proof_module, analyzer, n):
        geometry = proof_module.config.geometry
        src_row, dst_row = _find_pair(proof_module, n, subarrays=(2, 3))
        pattern = proof_module.decoder.neighboring_pattern(0, src_row, dst_row)
        x = sym_var("x")
        session = analyzer.new_session()
        for row in bank_rows(geometry, pattern.subarray_first, pattern.rows_first):
            session.set_value(0, row, x)
        report = analyzer.analyze_program(
            not_program(TIMING, 0, src_row, dst_row), session
        )
        assert list(report.errors) == []
        for row in bank_rows(geometry, pattern.subarray_last, pattern.rows_last):
            assert prove_value(
                session.value_of(0, row), sym_not(x), f"NOT destination {row}"
            ) == []

    def test_rowclone_copies_the_symbolic_value(self, proof_module, analyzer):
        geometry = proof_module.config.geometry
        src = geometry.bank_row(1, 10)
        dst = geometry.bank_row(1, 40)
        value = sym_xor(sym_var("p"), sym_var("q"))
        session = analyzer.new_session()
        session.set_value(0, src, value)
        report = analyzer.analyze_program(
            rowclone_program(TIMING, 0, src, dst), session
        )
        assert list(report.errors) == []
        assert session.value_of(0, dst) == value
        assert session.value_of(0, src) == value

    def test_frac_stores_half_vdd(self, analyzer):
        session = analyzer.new_session()
        geometry = analyzer.geometry
        row = geometry.bank_row(0, 3)
        session.set_value(0, row, CONST1)
        report = analyzer.analyze_program(frac_program(TIMING, 0, row), session)
        assert list(report.errors) == []
        assert session.value_of(0, row) == HALF


# ----------------------------------------------------------------------
# the static margin bound (Observation 14)
# ----------------------------------------------------------------------


class TestMarginBound:
    @pytest.mark.parametrize(
        "op,n,feasible",
        [
            ("and", 2, True),
            ("and", 4, True),
            ("and", 8, False),
            ("and", 16, False),
            ("or", 2, True),
            ("or", 4, True),
            ("or", 8, True),
            ("or", 16, False),
        ],
    )
    def test_observation_14_feasibility(self, op, n, feasible):
        bound = worst_case_sense_margin(op, n, DieCalibration())
        assert bound.feasible is feasible, bound.describe()

    def test_describe_mentions_the_verdict(self):
        bound = worst_case_sense_margin("and", 16, DieCalibration())
        assert "INFEASIBLE" in bound.describe()


# ----------------------------------------------------------------------
# SEM findings through the analyzer
# ----------------------------------------------------------------------


class TestSemFindings:
    def test_unknown_operands_flagged(self):
        analyzer = SemanticAnalyzer()
        geometry = analyzer.geometry
        program = logic_program(
            TIMING, 0, geometry.bank_row(0, 10), geometry.bank_row(1, 20)
        )
        report = analyzer.analyze_program(program)
        assert "SEM307" in {d.rule for d in report.diagnostics}

    def test_trng_readout_flagged_and_pragma_silences_it(self):
        analyzer = SemanticAnalyzer()
        geometry = analyzer.geometry
        row = geometry.bank_row(0, 5)
        session = analyzer.new_session()
        analyzer.analyze_program(frac_program(TIMING, 0, row), session)

        def read_program():
            return (
                TestProgram(TIMING, name="trng-read")
                .act(0, row, wait_ns=TIMING.t_ras)
                .rd(0, row, wait_ns=TIMING.t_rcd, label="row")
                .pre(0, wait_ns=TIMING.t_rp)
            )

        report = analyzer.analyze_program(read_program(), session.clone())
        assert "SEM306" in {d.rule for d in report.diagnostics}

        # The program-level pragma mirrors the lint's comment syntax.
        silenced = read_program().pragma(
            "# staticcheck: ignore[SEM306] intentional TRNG readout"
        )
        report = analyzer.analyze_program(silenced, session.clone())
        assert "SEM306" not in {d.rule for d in report.diagnostics}

    def test_pragma_rejects_malformed_comments(self):
        program = TestProgram(TIMING, name="x")
        from repro.errors import ProgramError

        with pytest.raises(ProgramError):
            program.pragma("this is not a pragma")
        program.pragma("staticcheck: ignore[SEM306, SEM309]")
        assert program.ignored_rules == frozenset({"SEM306", "SEM309"})

    def test_unused_operand_flagged_at_session_end(self):
        analyzer = SemanticAnalyzer()
        geometry = analyzer.geometry
        session = analyzer.new_session()
        session.bind(0, geometry.bank_row(2, 7), "a")
        analyzer.analyze_program(
            nominal_activation_program(TIMING, 0, geometry.bank_row(0, 3)),
            session,
        )
        diags = analyzer.finish_session(session, program="sweep")
        assert [d.rule for d in diags] == ["SEM309"]
        assert "a" in diags[0].message

    def test_session_clone_is_independent(self):
        analyzer = SemanticAnalyzer()
        session = analyzer.new_session()
        session.set_value(0, 10, CONST1)
        clone = session.clone()
        clone.set_value(0, 10, CONST0)
        assert session.value_of(0, 10) == CONST1
        assert clone.value_of(0, 10) == CONST0


# ----------------------------------------------------------------------
# the executor's verify_semantics gate
# ----------------------------------------------------------------------


def _tie_flow(host):
    """A reference side with no Frac row: unrealizable threshold (SEM304)."""
    module = host.module
    ref_row, com_row = _find_pair(module, 2)
    geometry = module.config.geometry
    pattern = module.decoder.neighboring_pattern(0, ref_row, com_row)
    ones = np.ones(module.row_bits, dtype=np.uint8)
    rng = np.random.default_rng(3)
    for row in bank_rows(geometry, pattern.subarray_first, pattern.rows_first):
        host.fill_row(0, row, ones)
    com_rows = bank_rows(geometry, pattern.subarray_last, pattern.rows_last)
    host.executor.semantic_session().bind(0, com_rows[0], "a")
    host.fill_row(0, com_rows[0], host.random_bits(rng))
    host.fill_row(0, com_rows[1], ones)
    return logic_program(host.timing, 0, ref_row, com_row)


class TestExecutorGate:
    def test_error_mode_refuses_the_program(self, ideal_module):
        host = DramBenderHost(ideal_module, verify_semantics="error")
        program = _tie_flow(host)
        with pytest.raises(ProgramVerificationError) as exc:
            host.run(program)
        assert any(d.rule == "SEM304" for d in exc.value.diagnostics)

    def test_warn_mode_attaches_diagnostics_and_runs(self, ideal_module):
        host = DramBenderHost(ideal_module, verify_semantics="warn")
        program = _tie_flow(host)
        result = host.run(program)
        assert any(d.rule == "SEM304" for d in result.diagnostics)

    def test_off_mode_is_a_no_op(self, ideal_module):
        host = DramBenderHost(ideal_module)  # verify_semantics="off"
        program = _tie_flow(host)
        result = host.run(program)
        assert not any(d.rule.startswith("SEM") for d in result.diagnostics)

    def test_backdoor_fills_feed_the_gate(self, ideal_module):
        host = DramBenderHost(ideal_module, verify_semantics="warn")
        module = host.module
        ref_row, com_row = _find_pair(module, 2)
        geometry = module.config.geometry
        pattern = module.decoder.neighboring_pattern(0, ref_row, com_row)
        ref_rows = bank_rows(
            geometry, pattern.subarray_first, pattern.rows_first
        )
        com_rows = bank_rows(
            geometry, pattern.subarray_last, pattern.rows_last
        )
        ones = np.ones(module.row_bits, dtype=np.uint8)
        rng = np.random.default_rng(5)
        session = host.executor.semantic_session()
        for row in ref_rows[:-1]:
            host.fill_row(0, row, ones)
        host.fill_row_voltages(
            0, ref_rows[-1], np.full(module.row_bits, 0.5)
        )
        for name, row in zip("ab", com_rows):
            session.bind(0, row, name)
            host.fill_row(0, row, host.random_bits(rng))
        result = host.run(logic_program(host.timing, 0, ref_row, com_row))
        assert not any(d.rule.startswith("SEM") for d in result.diagnostics)
        # The committed session now holds the proved AND on compute rows.
        session = host.executor.semantic_session()
        expected = sym_and(sym_var("a"), sym_var("b"))
        for row in com_rows:
            assert session.value_of(0, row) == expected
        for row in ref_rows:
            assert session.value_of(0, row) == sym_not(expected)

    def test_invalid_mode_rejected(self, ideal_module):
        with pytest.raises(ValueError):
            DramBenderHost(ideal_module, verify_semantics="loud")


# ----------------------------------------------------------------------
# operation-level symbolic contracts
# ----------------------------------------------------------------------


class TestOperationContracts:
    def test_logic_operation_expected_function(self, ideal_host):
        from repro.core.logic import LogicOperation

        ref_row, com_row = _find_pair(ideal_host.module, 2)
        a, b = sym_var("a"), sym_var("b")
        for op, expected in (
            ("and", sym_and(a, b)),
            ("or", sym_or(a, b)),
            ("nand", sym_nand(a, b)),
            ("nor", sym_nor(a, b)),
        ):
            operation = LogicOperation(ideal_host, 0, ref_row, com_row, op=op)
            assert operation.expected_function([a, b]) == expected
        with pytest.raises(ValueError):
            operation.expected_function([a])

    def test_majority_operation_expected_function(self, ideal_host):
        from repro.core.maj import MajorityOperation

        geometry = ideal_host.module.config.geometry
        operation = MajorityOperation(
            ideal_host, 0, geometry.bank_row(2, 100), geometry.bank_row(2, 103)
        )
        a, b, c = sym_var("a"), sym_var("b"), sym_var("c")
        assert operation.expected_function(a, b, c) == sym_majority(a, b, c)

    def test_trng_program_pragma_silences_the_conflict_pattern(self, analyzer):
        from repro.core.sequences import trng_program

        geometry = analyzer.geometry
        row_a = geometry.bank_row(0, 0)
        row_b = geometry.bank_row(0, 3)

        def seed(session, rows):
            for row, value in zip(rows, (CONST1, CONST0, CONST1, CONST0)):
                session.set_value(0, row, value)

        rows = [geometry.bank_row(0, r) for r in range(4)]
        noisy = analyzer.new_session()
        seed(noisy, rows)
        report = analyzer.analyze_program(
            logic_program(TIMING, 0, row_a, row_b), noisy
        )
        # A 2+2 conflict pattern is exactly a sense-amp tie.
        assert "SEM304" in {d.rule for d in report.diagnostics}

        silenced = analyzer.new_session()
        seed(silenced, rows)
        report = analyzer.analyze_program(
            trng_program(TIMING, 0, row_a, row_b), silenced
        )
        assert not {d.rule for d in report.diagnostics} & {
            "SEM303", "SEM304", "SEM306"
        }

    def test_trng_runs_clean_under_the_semantic_gate(self, ideal_module):
        from repro.core.trng import DramTrng

        host = DramBenderHost(ideal_module, verify_semantics="error")
        trng = DramTrng(host, bank=0, subarray=0, debias=False)
        bits = trng.raw_bits(64)
        assert bits.size == 64
