"""CLI behavior: exit codes, demo mode, lint mode."""

import pytest

from repro.staticcheck.__main__ import main, verify_shipped_sequences
from repro.characterization.fleet import all_specs


def test_list_rules_exits_zero(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "FC104" in out and "DET203" in out


def test_demo_case_exits_one_when_rule_fires(capsys):
    assert main(["--demo", "fc104"]) == 1
    out = capsys.readouterr().out
    assert "FC104" in out and "fired as documented" in out


def test_demo_all_self_test_exits_zero(capsys):
    assert main(["--demo", "all"]) == 0
    assert "bad cases fire" in capsys.readouterr().out


def test_demo_unknown_case_is_an_error():
    with pytest.raises(SystemExit):
        main(["--demo", "no-such-case"])


def test_unknown_spec_is_an_error():
    with pytest.raises(SystemExit):
        main(["no-such-spec", "--no-lint"])


def test_lint_mode_flags_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nx = random.random()\n")
    assert main(["--lint", str(bad)]) == 1
    assert "DET201" in capsys.readouterr().out


def test_lint_mode_passes_clean_file(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("import numpy as np\nrng = np.random.default_rng(7)\n")
    assert main(["--lint", str(good)]) == 0


def test_shipped_sequences_verify_clean_on_default_spec(capsys):
    spec = next(s for s in all_specs() if s.name == "hynix-4gb-m-x8-2666")
    diagnostics = verify_shipped_sequences(spec)
    assert diagnostics == [], "\n".join(d.format() for d in diagnostics)


def test_list_rules_includes_sem_family(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "SEM301" in out and "SEM305" in out and "SEM309" in out


def test_demo_sem_terminal_swap_fires(capsys):
    assert main(["--demo", "sem301"]) == 1
    out = capsys.readouterr().out
    assert "SEM301" in out and "fired as documented" in out


def test_semantics_mode_proves_shipped_flows(capsys):
    # Clean run: the only findings are the documented Observation 14
    # infeasibility warnings, never errors.
    assert main(["--semantics"]) == 0
    out = capsys.readouterr().out
    assert "AND" in out and "feasible" in out
    assert "compiler fan-in fusion" in out


def test_semantics_mode_rejects_mutated_lowering(capsys, monkeypatch):
    # The acceptance gate: a terminal-swap compiler mutation must turn
    # the --semantics exit status non-zero via SEM301.
    import repro.core.compiler as compiler
    from repro.core.compiler import Step

    original = compiler._emit

    def swap_terminals(expr, program, memo):
        ref = original(expr, program, memo)
        program.steps[:] = [
            Step("nor", s.inputs) if s.op == "nand" else s
            for s in program.steps
        ]
        return ref

    monkeypatch.setattr(compiler, "_emit", swap_terminals)
    assert main(["--semantics"]) == 1
    out = capsys.readouterr().out
    assert "SEM301" in out and "PROOF FAILED" in out


def test_prove_prints_truth_table_and_margins(capsys):
    assert main(["--prove", "~(a & b) | c"]) == 0
    out = capsys.readouterr().out
    assert "schedule:" in out
    assert "a b c | out" in out
    assert "margin:" in out


def test_prove_rejects_unparseable_expression():
    with pytest.raises(SystemExit):
        main(["--prove", "a &"])
