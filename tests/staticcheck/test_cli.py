"""CLI behavior: exit codes, demo mode, lint mode."""

import pytest

from repro.staticcheck.__main__ import main, verify_shipped_sequences
from repro.characterization.fleet import all_specs


def test_list_rules_exits_zero(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "FC104" in out and "DET203" in out


def test_demo_case_exits_one_when_rule_fires(capsys):
    assert main(["--demo", "fc104"]) == 1
    out = capsys.readouterr().out
    assert "FC104" in out and "fired as documented" in out


def test_demo_all_self_test_exits_zero(capsys):
    assert main(["--demo", "all"]) == 0
    assert "bad cases fire" in capsys.readouterr().out


def test_demo_unknown_case_is_an_error():
    with pytest.raises(SystemExit):
        main(["--demo", "no-such-case"])


def test_unknown_spec_is_an_error():
    with pytest.raises(SystemExit):
        main(["no-such-spec", "--no-lint"])


def test_lint_mode_flags_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nx = random.random()\n")
    assert main(["--lint", str(bad)]) == 1
    assert "DET201" in capsys.readouterr().out


def test_lint_mode_passes_clean_file(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("import numpy as np\nrng = np.random.default_rng(7)\n")
    assert main(["--lint", str(good)]) == 0


def test_shipped_sequences_verify_clean_on_default_spec(capsys):
    spec = next(s for s in all_specs() if s.name == "hynix-4gb-m-x8-2666")
    diagnostics = verify_shipped_sequences(spec)
    assert diagnostics == [], "\n".join(d.format() for d in diagnostics)
