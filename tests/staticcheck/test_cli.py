"""CLI behavior: exit codes, demo mode, lint mode, schedule mode."""

import pathlib

import pytest

from repro.staticcheck.__main__ import main, verify_shipped_sequences
from repro.characterization.fleet import all_specs


def test_list_rules_exits_zero(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "FC104" in out and "DET203" in out


def test_demo_case_exits_one_when_rule_fires(capsys):
    assert main(["--demo", "fc104"]) == 1
    out = capsys.readouterr().out
    assert "FC104" in out and "fired as documented" in out


def test_demo_all_self_test_exits_zero(capsys):
    assert main(["--demo", "all"]) == 0
    assert "bad cases fire" in capsys.readouterr().out


def test_demo_unknown_case_is_an_error():
    with pytest.raises(SystemExit):
        main(["--demo", "no-such-case"])


def test_unknown_spec_is_an_error():
    with pytest.raises(SystemExit):
        main(["no-such-spec", "--no-lint"])


def test_lint_mode_flags_bad_file(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nx = random.random()\n")
    assert main(["--lint", str(bad)]) == 1
    assert "DET201" in capsys.readouterr().out


def test_lint_mode_passes_clean_file(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text("import numpy as np\nrng = np.random.default_rng(7)\n")
    assert main(["--lint", str(good)]) == 0


def test_shipped_sequences_verify_clean_on_default_spec(capsys):
    spec = next(s for s in all_specs() if s.name == "hynix-4gb-m-x8-2666")
    diagnostics = verify_shipped_sequences(spec)
    assert diagnostics == [], "\n".join(d.format() for d in diagnostics)


def test_list_rules_includes_sem_family(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "SEM301" in out and "SEM305" in out and "SEM309" in out


def test_demo_sem_terminal_swap_fires(capsys):
    assert main(["--demo", "sem301"]) == 1
    out = capsys.readouterr().out
    assert "SEM301" in out and "fired as documented" in out


def test_semantics_mode_proves_shipped_flows(capsys):
    # Clean run: the only findings are the documented Observation 14
    # infeasibility warnings, never errors.
    assert main(["--semantics"]) == 0
    out = capsys.readouterr().out
    assert "AND" in out and "feasible" in out
    assert "compiler fan-in fusion" in out


def test_semantics_mode_rejects_mutated_lowering(capsys, monkeypatch):
    # The acceptance gate: a terminal-swap compiler mutation must turn
    # the --semantics exit status non-zero via SEM301.
    import repro.core.compiler as compiler
    from repro.core.compiler import Step

    original = compiler._emit

    def swap_terminals(expr, program, memo):
        ref = original(expr, program, memo)
        program.steps[:] = [
            Step("nor", s.inputs) if s.op == "nand" else s
            for s in program.steps
        ]
        return ref

    monkeypatch.setattr(compiler, "_emit", swap_terminals)
    assert main(["--semantics"]) == 1
    out = capsys.readouterr().out
    assert "SEM301" in out and "PROOF FAILED" in out


def test_prove_prints_truth_table_and_margins(capsys):
    assert main(["--prove", "~(a & b) | c"]) == 0
    out = capsys.readouterr().out
    assert "schedule:" in out
    assert "a b c | out" in out
    assert "margin:" in out


def test_prove_rejects_unparseable_expression():
    with pytest.raises(SystemExit):
        main(["--prove", "a &"])


EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples" / "schedules"


def test_list_rules_includes_cc_family(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "CC401" in out and "CC406" in out and "CC411" in out


def test_demo_cc402_fires(capsys):
    assert main(["--demo", "cc402"]) == 1
    out = capsys.readouterr().out
    assert "CC402" in out and "fired as documented" in out


def test_schedule_mode_refuses_conflict_plan(capsys):
    path = str(EXAMPLES / "sense_amp_conflict.json")
    assert main(["--schedule", path]) == 1
    out = capsys.readouterr().out
    assert "CC402" in out and "REFUSED" in out
    assert "[conflict]" in out
    assert "[wave" in out


def test_schedule_mode_admits_clean_plan(capsys):
    path = str(EXAMPLES / "clean_plan.json")
    assert main(["--schedule", path]) == 0
    out = capsys.readouterr().out
    assert "ADMITTED" in out
    assert "no conflicting job pairs" in out


def test_schedule_explain_prints_happens_before_trace(capsys):
    path = str(EXAMPLES / "sense_amp_conflict.json")
    assert main(["--schedule", path, "--explain"]) == 1
    out = capsys.readouterr().out
    assert "no happens-before edge" in out


def test_schedule_mode_rejects_missing_file(tmp_path):
    with pytest.raises(SystemExit):
        main(["--schedule", str(tmp_path / "missing.json")])


def test_schedule_mode_rejects_malformed_plan(tmp_path):
    plan = tmp_path / "plan.json"
    plan.write_text('{"jobs": [{"op": "teleport"}]}')
    with pytest.raises(SystemExit):
        main(["--schedule", str(plan)])
