"""Golden-diagnostic tests: every documented bad case fires its rule."""

import pytest

from repro.staticcheck.badcases import BADCASES, run_case
from repro.staticcheck.diagnostics import (
    RULES,
    Diagnostic,
    Severity,
    format_diagnostics,
    has_errors,
    max_severity,
)


@pytest.mark.parametrize("name", sorted(BADCASES))
def test_bad_case_fires_expected_rule(name):
    case, diagnostics = run_case(name)
    fired = [d for d in diagnostics if d.rule == case.rule]
    assert fired, (
        f"case {name} should trigger {case.rule}, got "
        f"{[d.rule for d in diagnostics]}"
    )
    for diag in fired:
        assert diag.severity == RULES[case.rule].severity
        assert case.rule in diag.format()
        assert diag.hint  # every rule ships a fix hint


def test_every_fc_and_det_rule_has_a_case():
    covered = {case.rule for case in BADCASES.values()}
    assert covered == set(RULES), sorted(set(RULES) - covered)


def test_rule_catalogue_is_consistent():
    for rule_id, rule in RULES.items():
        assert rule.id == rule_id
        assert rule.title and rule.summary and rule.hint
        assert rule_id.startswith(("FC1", "DET2", "SEM3", "CC4"))


def test_unknown_rule_id_rejected():
    with pytest.raises(ValueError):
        Diagnostic(rule="FC999", severity=Severity.ERROR, message="x")


def test_severity_ordering_and_str():
    assert Severity.ERROR > Severity.WARNING > Severity.INFO
    assert str(Severity.ERROR) == "error"


def test_format_diagnostics_orders_most_severe_first():
    warn = Diagnostic(
        rule="FC107", severity=Severity.WARNING, message="w", program="p"
    )
    err = Diagnostic(
        rule="FC104", severity=Severity.ERROR, message="e", program="p"
    )
    text = format_diagnostics([warn, err])
    assert text.index("FC104") < text.index("FC107")


def test_has_errors_and_max_severity():
    warn = Diagnostic(rule="FC107", severity=Severity.WARNING, message="w")
    assert not has_errors([warn])
    assert max_severity([warn]) == Severity.WARNING
    assert max_severity([]) is None


def test_diagnostic_locations():
    prog = Diagnostic(
        rule="FC101",
        severity=Severity.ERROR,
        message="m",
        program="demo",
        command_index=3,
    )
    assert prog.location() == "demo cmd 3"
    lint = Diagnostic(
        rule="DET203",
        severity=Severity.ERROR,
        message="m",
        file="src/x.py",
        line=12,
    )
    assert lint.location() == "src/x.py:12"
