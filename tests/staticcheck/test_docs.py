"""Docs-drift pins: the README rule tables must match the catalogue.

The FC/SEM/CC tables in README.md (and the prose list of DET rules) are
the user-facing contract; this test fails when a rule is added, removed,
or re-severitied without the docs following.
"""

import pathlib
import re

from repro.staticcheck.diagnostics import RULES

README = (
    pathlib.Path(__file__).resolve().parents[2] / "README.md"
).read_text()

_TABLE_ROW = re.compile(
    r"^\s*\|\s*((?:FC|SEM|CC)\d+)\s*\|\s*([a-z/]+)\s*\|", re.MULTILINE
)


def _table_rows():
    return {m.group(1): m.group(2) for m in _TABLE_ROW.finditer(README)}


def test_every_tabled_rule_family_is_complete():
    rows = _table_rows()
    for prefix in ("FC1", "SEM3", "CC4"):
        documented = {rule for rule in rows if rule.startswith(prefix[:2])}
        catalogued = {rule for rule in RULES if rule.startswith(prefix)}
        assert documented >= catalogued, (
            f"README table missing {sorted(catalogued - documented)}"
        )


def test_tabled_severities_match_catalogue():
    rows = _table_rows()
    for rule_id, cell in rows.items():
        assert rule_id in RULES, f"README documents unknown rule {rule_id}"
        assert str(RULES[rule_id].severity) in cell.split("/"), (
            f"README says {rule_id} is {cell!r}, catalogue says "
            f"{RULES[rule_id].severity}"
        )


def test_det_rules_mentioned_in_prose():
    for rule_id in RULES:
        if rule_id.startswith("DET"):
            assert rule_id in README, f"README never mentions {rule_id}"


def test_experiments_documents_schedule_verification():
    experiments = (
        pathlib.Path(__file__).resolve().parents[2] / "EXPERIMENTS.md"
    ).read_text()
    assert "Schedule verification" in experiments
    assert "--schedule" in experiments
    assert "CC402" in experiments
