"""Tests for the schedule-level concurrency analyzer (CC401-CC410).

Each rule gets a *golden* conflicting schedule (the finding fires, with
the documented severity and a fix hint) and a minimal *clean* variant
(the same workload, reshaped, admits).  The acceptance scenario from
the issue — a two-tenant sense-amp-sharing conflict refused while the
bank-disjoint placement runs to completion with matching results — is
exercised end to end against the analog backend, and a Hypothesis
property checks that schedules the analyzer admits are
interleaving-insensitive.
"""

from __future__ import annotations

import json
import pathlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bender.program import TestProgram
from repro.core.sequences import (
    frac_program,
    logic_program,
    nominal_activation_program,
    not_program,
    rowclone_program,
)
from repro.dram.config import ChipGeometry
from repro.dram.timing import timing_for_speed
from repro.errors import ConfigurationError
from repro.reliability.schemes import MitigationScheme
from repro.staticcheck import (
    ConflictGraph,
    JobSpec,
    Schedule,
    ScheduleAnalyzer,
    check_schedule,
    schedule_from_plan,
)
from repro.staticcheck.diagnostics import Severity

from schedule_harness import (
    fresh_host,
    run_round_robin,
    run_serial,
    seed_rows,
    snapshot,
)

TIMING = timing_for_speed(2666)
GEOMETRY = ChipGeometry()  # analyzer default: 16 banks x 8 subarrays x 640


def _row(subarray: int, local: int = 0) -> int:
    return GEOMETRY.bank_row(subarray, local)


def _job(tenant, name, *programs, scheme=None):
    return JobSpec(tenant, name, tuple(programs), scheme=scheme)


def _and_job(tenant, name, bank, ref_subarray):
    """A Frac + charge-sharing AND episode on (ref_subarray, +1)."""
    ref = _row(ref_subarray)
    com = _row(ref_subarray + 1)
    return _job(
        tenant,
        name,
        frac_program(TIMING, bank, ref),
        logic_program(TIMING, bank, ref, com),
    )


def _rules(schedule, **kwargs):
    report = ScheduleAnalyzer(**kwargs).check_schedule(schedule)
    return {finding.diagnostic.rule for finding in report.findings}


def _report(schedule, **kwargs):
    return ScheduleAnalyzer(**kwargs).check_schedule(schedule)


# ---------------------------------------------------------------------------
# per-rule golden + clean variants
# ---------------------------------------------------------------------------


class TestActRace:
    def test_cc401_fires_at_command_granularity(self):
        alice = _job("alice", "a", nominal_activation_program(TIMING, 0, _row(0)))
        bob = _job("bob", "b", nominal_activation_program(TIMING, 0, _row(4)))
        schedule = Schedule((alice, bob), granularity="command")
        assert "CC401" in _rules(schedule)
        assert not _report(schedule).admitted

    def test_clean_program_granularity_closed_banks(self):
        # Program granularity: each program closes its bank, so the
        # same workload admits.
        alice = _job("alice", "a", nominal_activation_program(TIMING, 0, _row(0)))
        bob = _job("bob", "b", nominal_activation_program(TIMING, 0, _row(4)))
        report = _report(Schedule((alice, bob), granularity="program"))
        assert "CC401" not in {f.diagnostic.rule for f in report.findings}

    def test_cc401_program_granularity_open_between_programs(self):
        # Alice's first program leaves bank 0 open (the second closes
        # it); bob activates the same bank between them.
        p1 = TestProgram(TIMING, name="a-open", intent="nominal").act(
            0, _row(0), wait_ns=TIMING.t_ras
        )
        p2 = TestProgram(TIMING, name="a-close", intent="nominal").pre(
            0, wait_ns=TIMING.t_rp
        )
        alice = _job("alice", "a", p1, p2)
        bob = _job("bob", "b", nominal_activation_program(TIMING, 0, _row(4)))
        assert "CC401" in _rules(Schedule((alice, bob)))

    def test_clean_disjoint_banks_at_command_granularity(self):
        alice = _job("alice", "a", nominal_activation_program(TIMING, 0, _row(0)))
        bob = _job("bob", "b", nominal_activation_program(TIMING, 1, _row(0)))
        rules = _rules(Schedule((alice, bob), granularity="command"))
        assert "CC401" not in rules


class TestSenseAmpSharing:
    def test_cc402_fires_for_neighboring_subarrays(self):
        schedule = Schedule(
            (_and_job("alice", "a", 0, 0), _and_job("bob", "b", 0, 2))
        )
        report = _report(schedule)
        assert "CC402" in {f.diagnostic.rule for f in report.findings}
        assert not report.admitted
        (finding,) = [
            f for f in report.findings if f.diagnostic.rule == "CC402"
        ]
        assert finding.diagnostic.hint

    def test_clean_bank_disjoint_placement(self):
        schedule = Schedule(
            (_and_job("alice", "a", 0, 0), _and_job("bob", "b", 1, 0))
        )
        report = _report(schedule)
        assert report.admitted, report.format()

    def test_clean_distant_subarrays_same_bank(self):
        # Subarray pairs (0,1) and (4,5): distance > 1 everywhere, no
        # shared stripe.
        schedule = Schedule(
            (_and_job("alice", "a", 0, 0), _and_job("bob", "b", 0, 4))
        )
        rules = {f.diagnostic.rule for f in _report(schedule).findings}
        assert "CC402" not in rules


class TestOperandOverlap:
    def test_cc403_write_read_overlap(self):
        alice = _job(
            "alice", "a", rowclone_program(TIMING, 0, _row(4, 40), _row(4, 41))
        )
        bob = _job(
            "bob", "b", rowclone_program(TIMING, 0, _row(4, 41), _row(4, 42))
        )
        report = _report(Schedule((alice, bob)))
        fired = [f for f in report.findings if f.diagnostic.rule == "CC403"]
        assert fired
        assert "cross-tenant isolation violation" in fired[0].diagnostic.message
        # The row-level finding supersedes the subarray-level one.
        assert "CC402" not in {f.diagnostic.rule for f in report.findings}

    def test_cc403_intra_tenant_flavor(self):
        one = _job(
            "alice", "a1", rowclone_program(TIMING, 0, _row(4, 40), _row(4, 41))
        )
        two = _job(
            "alice", "a2", rowclone_program(TIMING, 0, _row(4, 41), _row(4, 42))
        )
        report = _report(Schedule((one, two)))
        fired = [f for f in report.findings if f.diagnostic.rule == "CC403"]
        assert fired
        assert "intra-tenant write race" in fired[0].diagnostic.message

    def test_clean_read_read_sharing_is_no_race(self):
        # Both jobs *source* the same row; nobody writes it first.
        alice = _job(
            "alice", "a", rowclone_program(TIMING, 0, _row(4, 40), _row(4, 41))
        )
        bob = _job(
            "bob", "b", rowclone_program(TIMING, 0, _row(4, 40), _row(4, 60))
        )
        rules = {f.diagnostic.rule for f in _report(Schedule((alice, bob))).findings}
        assert "CC403" not in rules


class TestTenancy:
    ALLOC = {"alice": frozenset({(0, 0), (0, 1)})}

    def test_cc404_outside_allocation(self):
        alice = _job(
            "alice", "a", rowclone_program(TIMING, 0, _row(2), _row(2, 1))
        )
        schedule = Schedule((alice,), allocations=self.ALLOC)
        assert "CC404" in _rules(schedule)

    def test_clean_inside_allocation(self):
        alice = _job(
            "alice", "a", rowclone_program(TIMING, 0, _row(0), _row(0, 1))
        )
        report = _report(Schedule((alice,), allocations=self.ALLOC))
        assert report.admitted, report.format()

    def test_cc404_refresh_needs_whole_bank(self):
        ref = TestProgram(TIMING, name="a-ref").ref(0)
        schedule = Schedule((_job("alice", "a", ref),), allocations=self.ALLOC)
        assert "CC404" in _rules(schedule)

    def test_clean_refresh_with_whole_bank(self):
        ref = TestProgram(TIMING, name="a-ref").ref(0)
        whole_bank = {
            "alice": frozenset(
                (0, s) for s in range(GEOMETRY.subarrays_per_bank)
            )
        }
        report = _report(Schedule((_job("alice", "a", ref),), allocations=whole_bank))
        assert report.admitted, report.format()

    def test_cc407_unknown_tenant(self):
        bob = _job("bob", "b", nominal_activation_program(TIMING, 1, _row(0)))
        schedule = Schedule((bob,), allocations=self.ALLOC)
        assert "CC407" in _rules(schedule)

    def test_clean_no_allocation_map_disables_tenancy(self):
        bob = _job("bob", "b", nominal_activation_program(TIMING, 1, _row(0)))
        report = _report(Schedule((bob,)))
        assert report.admitted


class TestQuarantine:
    def test_cc405_quarantined_region(self):
        alice = _job(
            "alice", "a", rowclone_program(TIMING, 0, _row(3), _row(3, 1))
        )
        schedule = Schedule((alice,), quarantined=frozenset({(0, 3)}))
        assert "CC405" in _rules(schedule)

    def test_cc405_quarantined_row(self):
        alice = _job(
            "alice", "a", rowclone_program(TIMING, 0, _row(3), _row(3, 1))
        )
        schedule = Schedule(
            (alice,), quarantined_rows=frozenset({(0, _row(3))})
        )
        assert "CC405" in _rules(schedule)

    def test_clean_quarantine_elsewhere(self):
        alice = _job(
            "alice", "a", rowclone_program(TIMING, 0, _row(3), _row(3, 1))
        )
        report = _report(
            Schedule(
                (alice,),
                quarantined=frozenset({(1, 3)}),
                quarantined_rows=frozenset({(0, _row(5))}),
            )
        )
        assert report.admitted, report.format()


class TestTimingWindows:
    def test_cc406_split_window_even_bank_disjoint(self):
        alice = _and_job("alice", "a", 0, 0)
        bob = _job("bob", "b", nominal_activation_program(TIMING, 1, _row(0)))
        schedule = Schedule((alice, bob), granularity="command")
        rules = _rules(schedule)
        assert "CC406" in rules

    def test_clean_program_granularity_keeps_window_atomic(self):
        alice = _and_job("alice", "a", 0, 0)
        bob = _job("bob", "b", nominal_activation_program(TIMING, 1, _row(0)))
        report = _report(Schedule((alice, bob), granularity="program"))
        assert report.admitted, report.format()


class TestRefresh:
    def test_cc408_refresh_over_frac_state(self):
        ref = TestProgram(TIMING, name="a-ref").ref(0)
        schedule = Schedule((_job("alice", "a", ref), _and_job("bob", "b", 0, 2)))
        assert "CC408" in _rules(schedule)

    def test_clean_refresh_other_bank(self):
        ref = TestProgram(TIMING, name="a-ref").ref(1)
        report = _report(
            Schedule((_job("alice", "a", ref), _and_job("bob", "b", 0, 2)))
        )
        rules = {f.diagnostic.rule for f in report.findings}
        assert "CC408" not in rules


class TestAllocationMap:
    def test_cc409_overlap_is_error(self):
        schedule = Schedule(
            (),
            allocations={
                "alice": frozenset({(0, 0)}),
                "bob": frozenset({(0, 0)}),
            },
        )
        report = _report(schedule)
        (finding,) = report.findings
        assert finding.diagnostic.rule == "CC409"
        assert finding.diagnostic.severity == Severity.ERROR
        assert not report.admitted

    def test_cc409_adjacency_is_warning(self):
        schedule = Schedule(
            (),
            allocations={
                "alice": frozenset({(0, 1)}),
                "bob": frozenset({(0, 2)}),
            },
        )
        report = _report(schedule)
        (finding,) = report.findings
        assert finding.diagnostic.rule == "CC409"
        assert finding.diagnostic.severity == Severity.WARNING
        assert report.admitted  # a warning does not refuse

    def test_clean_disjoint_nonadjacent_map(self):
        schedule = Schedule(
            (),
            allocations={
                "alice": frozenset({(0, 0)}),
                "bob": frozenset({(0, 4)}),
            },
        )
        report = _report(schedule)
        assert not report.findings


class TestMitigationPlacement:
    def test_cc410_rows_overflow_on_not(self):
        alice = _job(
            "alice",
            "a",
            not_program(TIMING, 0, _row(4), _row(4, 1)),
            scheme=MitigationScheme.from_label("vote3+rows3"),
        )
        assert "CC410" in _rules(Schedule((alice,)))

    def test_cc410_retry_without_charge_share(self):
        alice = _job(
            "alice",
            "a",
            not_program(TIMING, 0, _row(4), _row(4, 1)),
            scheme=MitigationScheme.from_label("retry2"),
        )
        assert "CC410" in _rules(Schedule((alice,)))

    def test_clean_vote_retry_on_logic(self):
        job = _and_job("alice", "a", 0, 0)
        alice = JobSpec(
            job.tenant,
            job.name,
            job.programs,
            scheme=MitigationScheme.from_label("vote3+retry2"),
        )
        report = _report(Schedule((alice,)))
        assert report.admitted, report.format()

    def test_clean_uncoded_scheme_checks_nothing(self):
        alice = _job(
            "alice",
            "a",
            not_program(TIMING, 0, _row(4), _row(4, 1)),
            scheme=MitigationScheme.uncoded(),
        )
        rules = _rules(Schedule((alice,)))
        assert "CC410" not in rules


# ---------------------------------------------------------------------------
# analyzer mechanics
# ---------------------------------------------------------------------------


class TestAnalyzerMechanics:
    def test_unknown_suppress_id_rejected(self):
        with pytest.raises(ConfigurationError):
            ScheduleAnalyzer(suppress=("CC999",))

    def test_suppress_drops_the_finding(self):
        schedule = Schedule(
            (_and_job("alice", "a", 0, 0), _and_job("bob", "b", 0, 2))
        )
        assert "CC402" in _rules(schedule)
        assert "CC402" not in _rules(schedule, suppress=("CC402",))

    def test_check_schedule_convenience_wrapper(self):
        schedule = Schedule(
            (_and_job("alice", "a", 0, 0), _and_job("bob", "b", 0, 2))
        )
        report = check_schedule(schedule)
        assert not report.admitted

    def test_schedule_rejects_bad_granularity(self):
        with pytest.raises(ConfigurationError):
            Schedule((), granularity="cycle")

    def test_schedule_rejects_duplicate_job_names(self):
        a = _job("alice", "same", nominal_activation_program(TIMING, 0, _row(0)))
        b = _job("bob", "same", nominal_activation_program(TIMING, 1, _row(0)))
        with pytest.raises(ConfigurationError):
            Schedule((a, b))

    def test_jobspec_rejects_empty_programs(self):
        with pytest.raises(ConfigurationError):
            JobSpec("alice", "empty", ())

    def test_report_format_mentions_verdict_and_explain_traces(self):
        schedule = Schedule(
            (_and_job("alice", "a", 0, 0), _and_job("bob", "b", 0, 2))
        )
        report = _report(schedule)
        plain = report.format()
        assert "REFUSED" in plain
        explained = report.format(explain=True)
        assert len(explained.splitlines()) > len(plain.splitlines())
        assert "no happens-before edge" in explained

    def test_clean_report_format_admits(self):
        report = _report(
            Schedule((_and_job("alice", "a", 0, 0),))
        )
        assert "ADMITTED" in report.format()


class TestConflictGraph:
    def _graph(self):
        schedule = Schedule(
            (
                _and_job("alice", "a", 0, 0),
                _and_job("bob", "b", 0, 2),
                _and_job("carol", "c", 1, 0),
            )
        )
        return _report(schedule).conflicts

    def test_edges_and_queries(self):
        graph = self._graph()
        assert graph.jobs == ("a", "b", "c")
        assert not graph.may_run_concurrently("a", "b")
        assert graph.may_run_concurrently("a", "c")
        assert graph.may_run_concurrently("b", "c")
        assert graph.conflicts_of("a") == ("b",)
        (edge,) = graph.edges
        assert edge[0] == "a" and edge[1] == "b"
        assert "CC402" in edge[2]

    def test_waves_serialize_conflicts(self):
        waves = self._graph().waves()
        assert waves == (("a", "c"), ("b",))

    def test_to_json_round_trips(self):
        payload = json.loads(self._graph().to_json())
        assert payload["jobs"] == ["a", "b", "c"]
        assert payload["waves"] == [["a", "c"], ["b"]]
        assert payload["edges"][0]["rules"] == ["CC402"]

    def test_unknown_edge_job_rejected(self):
        with pytest.raises(ConfigurationError):
            ConflictGraph(("a",), edges=((("a"), "ghost", ("CC402",)),))

    def test_merged_edge_rules(self):
        graph = ConflictGraph(
            ("a", "b"),
            edges=(
                ("a", "b", ("CC402",)),
                ("b", "a", ("CC401",)),
            ),
        )
        (edge,) = graph.edges
        assert edge[2] == ("CC401", "CC402")


# ---------------------------------------------------------------------------
# PLAN.json parsing
# ---------------------------------------------------------------------------


EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples" / "schedules"


class TestPlanParsing:
    def test_example_conflict_plan_parses_and_refuses(self):
        plan = json.loads((EXAMPLES / "sense_amp_conflict.json").read_text())
        schedule = schedule_from_plan(plan, TIMING)
        assert [job.name for job in schedule.jobs] == ["alice-and", "bob-and"]
        assert schedule.allocations["alice"] == frozenset({(0, 0), (0, 1)})
        report = _report(schedule)
        assert not report.admitted
        assert "CC402" in {f.diagnostic.rule for f in report.findings}

    def test_example_clean_plan_parses_and_admits(self):
        plan = json.loads((EXAMPLES / "clean_plan.json").read_text())
        schedule = schedule_from_plan(plan, TIMING)
        report = _report(schedule)
        assert report.admitted, report.format()

    def test_all_ops_and_options(self):
        plan = {
            "granularity": "command",
            "quarantine": [[1, 3]],
            "quarantine_rows": [[0, 7]],
            "jobs": [
                {"tenant": "t", "op": "not", "bank": 0,
                 "src_row": _row(4), "dst_row": _row(4, 1)},
                {"tenant": "t", "op": "rowclone", "bank": 0,
                 "src_row": _row(4), "dst_row": _row(4, 1)},
                {"tenant": "t", "op": "frac", "bank": 0, "row": 0},
                {"tenant": "t", "op": "nominal", "bank": 0, "row": 0},
                {"tenant": "t", "op": "refresh", "bank": 0},
                {"tenant": "t", "op": "logic", "bank": 0, "ref_row": 0,
                 "com_row": _row(1), "frac": False, "name": "bare-logic",
                 "scheme": "vote3"},
            ],
        }
        schedule = schedule_from_plan(plan, TIMING)
        assert schedule.granularity == "command"
        assert schedule.quarantined == frozenset({(1, 3)})
        assert schedule.quarantined_rows == frozenset({(0, 7)})
        assert len(schedule.jobs) == 6
        bare = schedule.jobs[-1]
        assert bare.name == "bare-logic"
        assert len(bare.programs) == 1  # frac: false skips the prologue
        assert bare.scheme is not None and bare.scheme.votes == 3
        default_logic_plan = {"jobs": [
            {"tenant": "t", "op": "logic", "bank": 0,
             "ref_row": 0, "com_row": _row(1)},
        ]}
        with_prologue = schedule_from_plan(default_logic_plan, TIMING)
        assert len(with_prologue.jobs[0].programs) == 2

    @pytest.mark.parametrize(
        "plan",
        [
            {"jobs": [{"op": "teleport", "bank": 0}]},
            {"jobs": [{"op": "logic", "bank": 0}]},  # missing rows
            {"jobs": [{"op": "frac", "bank": 0, "row": "many"}]},
            {"jobs": "not-a-list"},
            {"allocations": ["not", "a", "dict"]},
            {"quarantine": [[0]]},  # not a pair
        ],
    )
    def test_malformed_plans_raise(self, plan):
        with pytest.raises(ConfigurationError):
            schedule_from_plan(plan, TIMING)

    def test_default_job_names_are_unique(self):
        plan = {"jobs": [
            {"tenant": "t", "op": "frac", "bank": 0, "row": 0},
            {"tenant": "t", "op": "frac", "bank": 0, "row": 64},
        ]}
        schedule = schedule_from_plan(plan, TIMING)
        names = [job.name for job in schedule.jobs]
        assert len(set(names)) == 2


# ---------------------------------------------------------------------------
# acceptance: refusal vs. execution, and interleaving-insensitivity
# ---------------------------------------------------------------------------


def _small_row(geometry, subarray, local=0):
    return geometry.bank_row(subarray, local)


def _small_and_job(geometry, timing, tenant, name, bank, ref_subarray):
    ref = _small_row(geometry, ref_subarray)
    com = _small_row(geometry, ref_subarray + 1)
    return JobSpec(
        tenant,
        name,
        (
            frac_program(timing, bank, ref),
            logic_program(timing, bank, ref, com),
        ),
    )


class TestAcceptanceScenario:
    """The issue's acceptance bar, end to end on the analog backend."""

    def test_sense_amp_conflict_refused_bank_disjoint_runs(self, small_geometry):
        host = fresh_host(small_geometry, verify="warn")
        timing = host.timing
        analyzer = ScheduleAnalyzer.for_module(host.module)

        conflicted = Schedule(
            (
                _small_and_job(small_geometry, timing, "alice", "alice-and", 0, 0),
                _small_and_job(small_geometry, timing, "bob", "bob-and", 0, 2),
            ),
            allocations={
                "alice": frozenset({(0, 0), (0, 1)}),
                "bob": frozenset({(0, 2), (0, 3)}),
            },
        )
        refused = analyzer.check_schedule(conflicted)
        assert not refused.admitted
        assert "CC402" in {f.diagnostic.rule for f in refused.findings}

        clean = Schedule(
            (
                _small_and_job(small_geometry, timing, "alice", "alice-and", 0, 0),
                _small_and_job(small_geometry, timing, "bob", "bob-and", 1, 0),
            ),
            allocations={
                "alice": frozenset({(0, 0), (0, 1)}),
                "bob": frozenset({(1, 0), (1, 1)}),
            },
        )
        admitted = analyzer.check_schedule(clean)
        assert admitted.admitted, admitted.format()

        rows_by_bank = {0: [0], 1: [0]}  # the Frac reference rows
        serial_host = fresh_host(small_geometry, verify="warn")
        seed_rows(serial_host, rows_by_bank)
        run_serial(serial_host, clean.jobs)
        serial = snapshot(serial_host, admitted.footprints)

        rr_host = fresh_host(small_geometry, verify="warn")
        seed_rows(rr_host, rows_by_bank)
        run_round_robin(rr_host, clean.jobs)
        interleaved = snapshot(rr_host, admitted.footprints)

        assert serial == interleaved
        assert set(serial) == {"alice", "bob"}


PROGRAM_SPEC = st.tuples(
    st.sampled_from(["rowclone", "nominal"]),
    st.integers(min_value=0, max_value=3),   # subarray
    st.integers(min_value=0, max_value=191),  # src local row
    st.integers(min_value=0, max_value=191),  # dst local row
)
JOB_SPEC = st.lists(PROGRAM_SPEC, min_size=1, max_size=3)


def _build_programs(geometry, timing, bank, spec):
    programs = []
    for kind, subarray, src, dst in spec:
        src_row = geometry.bank_row(subarray, src)
        if kind == "nominal":
            programs.append(nominal_activation_program(timing, bank, src_row))
        else:
            if dst == src:
                dst = (src + 1) % geometry.rows_per_subarray
            dst_row = geometry.bank_row(subarray, dst)
            programs.append(rowclone_program(timing, bank, src_row, dst_row))
    return tuple(programs)


@given(alice=JOB_SPEC, bob=JOB_SPEC, data_seed=st.integers(0, 2**16))
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_admitted_schedules_are_interleaving_insensitive(
    small_geometry, alice, bob, data_seed
):
    """Any schedule the analyzer admits executes on the analog backend
    with no FC-rule refusals (``verify="error"``) and byte-identical
    per-tenant results vs. serial execution (issue acceptance bar)."""
    geometry = small_geometry
    probe = fresh_host(geometry, verify="error")
    timing = probe.timing
    jobs = (
        JobSpec("alice", "alice-job", _build_programs(geometry, timing, 0, alice)),
        JobSpec("bob", "bob-job", _build_programs(geometry, timing, 1, bob)),
    )
    all_subarrays = range(geometry.subarrays_per_bank)
    schedule = Schedule(
        jobs,
        allocations={
            "alice": frozenset((0, s) for s in all_subarrays),
            "bob": frozenset((1, s) for s in all_subarrays),
        },
    )
    report = ScheduleAnalyzer.for_module(probe.module).check_schedule(schedule)
    assert report.admitted, report.format()

    seeded = {
        bank: sorted(
            {geometry.bank_row(sub, src) for _, sub, src, _ in spec}
        )
        for bank, spec in ((0, alice), (1, bob))
    }
    serial_host = fresh_host(geometry, verify="error")
    seed_rows(serial_host, seeded, data_seed=data_seed)
    run_serial(serial_host, jobs)
    serial = snapshot(serial_host, report.footprints)

    rr_host = fresh_host(geometry, verify="error")
    seed_rows(rr_host, seeded, data_seed=data_seed)
    run_round_robin(rr_host, jobs)
    interleaved = snapshot(rr_host, report.footprints)

    assert serial == interleaved
