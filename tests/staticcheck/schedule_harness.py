"""Execution harness for schedule tests.

Runs the jobs of a :class:`repro.staticcheck.Schedule` on a fresh
ideal-calibration host twice — once serially (job after job) and once
round-robin interleaved (one program per job per turn) — and snapshots
the rows each tenant touched, so tests can assert that an *admitted*
schedule is interleaving-insensitive: byte-identical per-tenant results
under both executions.

This lives next to the tests (not in ``repro``) because it is a test
instrument: real schedulers interleave at the memory controller, not
with a Python loop.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro import SeedTree, ideal_calibration, sk_hynix_chip
from repro.bender import DramBenderHost
from repro.dram.config import ChipGeometry
from repro.dram.module import Module
from repro.staticcheck.concurrency import JobFootprint, JobSpec


def fresh_host(
    geometry: ChipGeometry, seed: int = 7, verify: str = "error"
) -> DramBenderHost:
    """A noise-free host over ``geometry``; deterministic for a seed."""
    config = sk_hynix_chip().with_geometry(geometry)
    module = Module(
        config,
        chip_count=1,
        seed_tree=SeedTree(seed),
        calibration=ideal_calibration(),
    )
    return DramBenderHost(module, verify=verify)


def seed_rows(
    host: DramBenderHost,
    rows_by_bank: Mapping[int, Sequence[int]],
    data_seed: int = 1234,
) -> None:
    """Write deterministic random patterns into the given rows."""
    rng = np.random.default_rng(data_seed)
    for bank in sorted(rows_by_bank):
        for row in sorted(rows_by_bank[bank]):
            bits = rng.integers(0, 2, host.module.row_bits, dtype=np.uint8)
            host.write_row(bank, row, bits)


def run_serial(host: DramBenderHost, jobs: Sequence[JobSpec]) -> None:
    """Execute every program of every job, one job after another."""
    for job in jobs:
        for program in job.programs:
            host.run(program)


def run_round_robin(host: DramBenderHost, jobs: Sequence[JobSpec]) -> None:
    """Interleave the jobs one program per turn (a fair scheduler)."""
    queues = [list(job.programs) for job in jobs]
    while any(queues):
        for queue in queues:
            if queue:
                host.run(queue.pop(0))


def snapshot(
    host: DramBenderHost,
    footprints: Sequence[JobFootprint],
) -> Dict[str, Dict[Tuple[int, int], bytes]]:
    """Per-tenant read-back of every row the tenant's jobs touched."""
    result: Dict[str, Dict[Tuple[int, int], bytes]] = {}
    for footprint in footprints:
        tenant = result.setdefault(footprint.job.tenant, {})
        for bank, rows in sorted(footprint.rows_touched().items()):
            for row in sorted(rows):
                tenant[(bank, row)] = host.read_row(bank, row).tobytes()
    return result
