"""Determinism-linter semantics, plus the tree-is-clean guarantee."""

import os

import repro
from repro.staticcheck.determinism import lint_paths, lint_source


def _rules(source, filename="mod.py"):
    return [d.rule for d in lint_source(source, filename=filename)]


class TestGlobalRandom:
    def test_stdlib_random_flagged(self):
        assert _rules("import random\nx = random.randint(0, 1)\n") == ["DET201"]

    def test_from_import_alias_resolved(self):
        src = "from random import randint as ri\nx = ri(0, 1)\n"
        assert _rules(src) == ["DET201"]

    def test_numpy_global_flagged(self):
        assert _rules("import numpy as np\nx = np.random.rand(3)\n") == ["DET202"]

    def test_seedless_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert _rules(src) == ["DET202"]

    def test_seeded_default_rng_allowed(self):
        src = "import numpy as np\nrng = np.random.default_rng(1234)\n"
        assert _rules(src) == []

    def test_local_name_shadowing_not_flagged(self):
        # A parameter named `random` is not the stdlib module.
        src = "def f(random):\n    return random.randint(0, 1)\n"
        assert _rules(src) == []


class TestWallClock:
    def test_time_time_flagged(self):
        assert _rules("import time\nt = time.time()\n") == ["DET203"]

    def test_datetime_now_flagged(self):
        src = "from datetime import datetime\nt = datetime.now()\n"
        assert _rules(src) == ["DET203"]

    def test_monotonic_allowed(self):
        # Durations cannot leak calendar time into results.
        assert _rules("import time\nt = time.monotonic()\n") == []

    def test_exempt_module_suffix(self):
        src = "import time\nt = time.time()\n"
        assert _rules(src, filename="src/repro/bender/thermal.py") == []
        assert _rules(src, filename="src/repro/characterization/resilience.py") == []


class TestNonAtomicWrite:
    def test_write_mode_flagged(self):
        src = "with open('r.json', 'w') as f:\n    f.write('{}')\n"
        assert _rules(src) == ["DET204"]

    def test_append_and_plus_modes_flagged(self):
        assert _rules("f = open('log.txt', 'a')\n") == ["DET204"]
        assert _rules("f = open('log.txt', 'r+')\n") == ["DET204"]

    def test_read_mode_allowed(self):
        assert _rules("with open('r.json') as f:\n    f.read()\n") == []
        assert _rules("f = open('r.json', 'rb')\n") == []

    def test_os_fdopen_not_flagged(self):
        src = "import os\nf = os.fdopen(3, 'w')\n"
        assert _rules(src) == []

    def test_atomicio_module_exempt(self):
        src = "f = open('x.json', 'w')\n"
        assert _rules(src, filename="src/repro/atomicio.py") == []


class TestUnorderedMappingIteration:
    def test_tenant_mapping_items_flagged(self):
        src = "for tenant, regions in allocations.items():\n    pass\n"
        assert _rules(src) == ["DET205"]

    def test_placement_keys_flagged(self):
        src = "for name in placements.keys():\n    pass\n"
        assert _rules(src) == ["DET205"]

    def test_attribute_receiver_flagged(self):
        src = "for t in self.per_tenant.values():\n    pass\n"
        assert _rules(src) == ["DET205"]

    def test_comprehension_flagged(self):
        src = "names = [t for t, _ in tenant_map.items()]\n"
        assert _rules(src) == ["DET205"]

    def test_quarantine_and_target_names_flagged(self):
        assert _rules("for q in quarantined.keys():\n    pass\n") == ["DET205"]
        assert _rules("for t in targets.values():\n    pass\n") == ["DET205"]

    def test_sorted_wrapper_is_clean(self):
        src = "for tenant, r in sorted(allocations.items()):\n    pass\n"
        assert _rules(src) == []

    def test_unrelated_receiver_name_is_clean(self):
        src = "for key, value in cache.items():\n    pass\n"
        assert _rules(src) == []

    def test_items_with_arguments_is_clean(self):
        # Not a mapping view: some other .items(...) API.
        src = "for x in allocations.items(5):\n    pass\n"
        assert _rules(src) == []

    def test_non_loop_view_call_is_clean(self):
        # Only *iteration order* is nondeterministic-sensitive here.
        src = "count = len(allocations.items())\n"
        assert _rules(src) == []

    def test_pragma_suppresses_det205(self):
        src = (
            "for tenant, r in allocations.items():"
            "  # staticcheck: ignore[DET205] display only\n"
            "    pass\n"
        )
        assert _rules(src) == []


class TestPragmas:
    def test_same_line_pragma(self):
        src = "import time\nt = time.time()  # staticcheck: ignore[DET203] ok\n"
        assert _rules(src) == []

    def test_preceding_line_pragma(self):
        src = (
            "import time\n"
            "# staticcheck: ignore[DET203] progress only\n"
            "t = time.time()\n"
        )
        assert _rules(src) == []

    def test_wildcard_pragma(self):
        src = "import time\nt = time.time()  # staticcheck: ignore[*]\n"
        assert _rules(src) == []

    def test_pragma_for_other_rule_does_not_suppress(self):
        src = "import time\nt = time.time()  # staticcheck: ignore[DET204]\n"
        assert _rules(src) == ["DET203"]


def test_lint_source_rejects_syntax_errors():
    import pytest

    with pytest.raises(ValueError):
        lint_source("def broken(:\n", filename="broken.py")


def test_installed_repro_tree_is_clean():
    """Satellite guarantee: the shipped source tree lints clean, so the
    CI staticcheck job lands green."""
    tree = os.path.dirname(os.path.abspath(repro.__file__))
    findings = lint_paths([tree])
    assert findings == [], "\n".join(d.format() for d in findings)
