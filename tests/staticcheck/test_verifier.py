"""Program-verifier semantics: clean passes, sessions, chip policies."""

import pytest

from repro import ChipGeometry, SeedTree, samsung_chip, sk_hynix_chip
from repro.bender.program import TestProgram
from repro.core.addressing import find_pattern_pair
from repro.core.sequences import (
    frac_program,
    logic_program,
    nominal_activation_program,
    not_program,
    rowclone_program,
)
from repro.dram.config import ActivationSupport
from repro.dram.decoder import ActivationKind
from repro.dram.module import Module
from repro.dram.timing import timing_for_speed
from repro.staticcheck.diagnostics import Severity
from repro.staticcheck.verifier import ProgramVerifier

SPEED_GRADES = (2133, 2400, 2666, 3200)
INPUT_COUNTS = (2, 4, 8, 16)


def _module(speed: int) -> Module:
    from dataclasses import replace

    config = replace(sk_hynix_chip(), speed_rate_mts=speed)
    return Module(config, chip_count=1, seed_tree=SeedTree(0))


@pytest.mark.parametrize("speed", SPEED_GRADES)
def test_all_sequence_constructors_verify_clean(speed):
    """The acceptance criterion: every shipped constructor, zero errors,
    at every supported input count {2, 4, 8, 16}."""
    module = _module(speed)
    geometry = module.config.geometry
    timing = timing_for_speed(speed)
    verifier = ProgramVerifier.for_module(module)
    state = verifier.new_session()
    programs = []
    for n in INPUT_COUNTS:
        ref_row, com_row = find_pattern_pair(
            module.decoder, geometry, 0, 0, 1, n,
            kind=ActivationKind.N_TO_N, seed=n,
        )
        src_row, dst_row = find_pattern_pair(
            module.decoder, geometry, 0, 2, 3, n,
            kind=ActivationKind.N_TO_N, seed=100 + n,
        )
        programs.append(frac_program(timing, 0, ref_row))
        programs.append(logic_program(timing, 0, ref_row, com_row))
        programs.append(not_program(timing, 0, src_row, dst_row))
    programs.append(
        rowclone_program(
            timing, 0, geometry.bank_row(4, 10), geometry.bank_row(4, 40)
        )
    )
    programs.append(nominal_activation_program(timing, 0, 5))

    for program in programs:
        report = verifier.verify_program(program, state=state)
        assert report.errors == (), (
            f"{program.name}@{speed}: " + "\n".join(d.format() for d in report.errors)
        )
        assert report.warnings == (), (
            f"{program.name}@{speed}: "
            + "\n".join(d.format() for d in report.warnings)
        )


def test_gap_classification_idioms():
    module = _module(2666)
    geometry = module.config.geometry
    timing = timing_for_speed(2666)
    verifier = ProgramVerifier.for_module(module)

    report = verifier.verify_program(
        not_program(timing, 0, geometry.bank_row(0, 3), geometry.bank_row(1, 8))
    )
    assert [c.idiom for c in report.classifications] == ["not"]
    assert report.classifications[0].violates_t_rp
    assert not report.classifications[0].violates_t_ras

    report = verifier.verify_program(frac_program(timing, 0, 17))
    assert [c.idiom for c in report.classifications] == ["frac"]
    assert report.classifications[0].violates_t_ras

    report = verifier.verify_program(nominal_activation_program(timing, 0, 5))
    assert [c.idiom for c in report.classifications] == ["nominal"]

    state = verifier.new_session()
    verifier.verify_program(frac_program(timing, 0, 3), state=state)
    report = verifier.verify_program(
        logic_program(timing, 0, 3, geometry.bank_row(1, 9)), state=state
    )
    assert "logic" in [c.idiom for c in report.classifications]
    logic = next(c for c in report.classifications if c.idiom == "logic")
    assert logic.violates_t_ras and logic.violates_t_rp


def test_session_frac_reference_satisfies_logic_op():
    module = _module(2666)
    geometry = module.config.geometry
    timing = timing_for_speed(2666)
    verifier = ProgramVerifier.for_module(module)

    # Without a session Frac, the logic op warns FC106...
    cold = verifier.verify_program(
        logic_program(timing, 0, 3, geometry.bank_row(1, 9))
    )
    assert "FC106" in {d.rule for d in cold.diagnostics}

    # ...and with frac_program run first in the same session, it is clean.
    state = verifier.new_session()
    verifier.verify_program(frac_program(timing, 0, 3), state=state)
    warm = verifier.verify_program(
        logic_program(timing, 0, 3, geometry.bank_row(1, 9)), state=state
    )
    assert "FC106" not in {d.rule for d in warm.diagnostics}


def test_refresh_destroys_frac_reference():
    module = _module(2666)
    geometry = module.config.geometry
    timing = timing_for_speed(2666)
    verifier = ProgramVerifier.for_module(module)
    state = verifier.new_session()
    verifier.verify_program(frac_program(timing, 0, 3), state=state)
    # REF to the (closed) bank re-amplifies every cell to full rail.
    ref = verifier.verify_program(
        TestProgram(timing, name="ref").ref(0), state=state
    )
    assert ref.errors == ()
    after = verifier.verify_program(
        logic_program(timing, 0, 3, geometry.bank_row(1, 9)), state=state
    )
    assert "FC106" in {d.rule for d in after.diagnostics}


def test_session_state_clone_is_isolated():
    module = _module(2666)
    timing = timing_for_speed(2666)
    verifier = ProgramVerifier.for_module(module)
    state = verifier.new_session()
    verifier.verify_program(frac_program(timing, 0, 3), state=state)
    clone = state.clone()
    assert clone.frac_rows == state.frac_rows
    clone.frac_rows.clear()
    assert state.frac_rows  # the original keeps its marks


def test_sequential_only_downgrades_logic_intent_to_warning():
    config = samsung_chip()
    module = Module(config, chip_count=1, seed_tree=SeedTree(0))
    geometry = config.geometry
    timing = timing_for_speed(config.speed_rate_mts)
    verifier = ProgramVerifier.for_module(module)
    assert verifier.support is ActivationSupport.SEQUENTIAL_ONLY
    report = verifier.verify_program(
        logic_program(timing, 0, 3, geometry.bank_row(1, 9))
    )
    fc113 = [d for d in report.diagnostics if d.rule == "FC113"]
    assert fc113 and fc113[0].severity == Severity.WARNING
    assert "sequential-only" in fc113[0].message
    # The sequence degrades to the NOT regime, not charge sharing.
    assert "not" in {c.idiom for c in report.classifications}


def test_none_support_ignores_violating_sequences():
    from repro import micron_chip

    config = micron_chip()
    module = Module(config, chip_count=1, seed_tree=SeedTree(0))
    geometry = config.geometry
    timing = timing_for_speed(config.speed_rate_mts)
    verifier = ProgramVerifier.for_module(module)
    report = verifier.verify_program(
        not_program(timing, 0, geometry.bank_row(0, 3), geometry.bank_row(1, 8))
    )
    assert report.errors == ()
    assert "ignored" in {c.idiom for c in report.classifications}


def test_suppress_drops_rule():
    geometry = ChipGeometry()
    timing = timing_for_speed(2666)
    program = not_program(timing, 0, geometry.bank_row(0, 0), geometry.bank_row(3, 0))
    plain = ProgramVerifier(geometry).verify_program(program)
    assert "FC104" in {d.rule for d in plain.diagnostics}
    quiet = ProgramVerifier(geometry, suppress=("FC104", "FC113")).verify_program(
        program
    )
    assert {d.rule for d in quiet.diagnostics} == set()


def test_suppress_rejects_unknown_rule():
    with pytest.raises(ValueError):
        ProgramVerifier(ChipGeometry(), suppress=("FC999",))


def test_topology_helpers():
    geometry = ChipGeometry()
    assert geometry.subarrays_are_neighbors(2, 3)
    assert geometry.subarrays_are_neighbors(3, 3)
    assert not geometry.subarrays_are_neighbors(0, 2)
    assert geometry.rows_share_sense_amps(
        geometry.bank_row(4, 0), geometry.bank_row(5, 639)
    )
    assert not geometry.rows_share_sense_amps(
        geometry.bank_row(0, 0), geometry.bank_row(7, 0)
    )
