"""Tests for box-plot rendering, paper data, comparison, and reporting."""

import numpy as np
import pytest

from repro.analysis.boxplot import render_box_line, render_boxes
from repro.analysis.compare import ComparisonRow, compare_experiment
from repro.analysis.paperdata import PAPER, anchors_for
from repro.analysis.report import EXPERIMENT_ORDER, generate_report
from repro.characterization import SMOKE
from repro.characterization.metrics import BoxStats
from repro.characterization.results import ExperimentResult


class TestBoxRendering:
    def test_line_width(self):
        stats = BoxStats.from_values(np.array([0.2, 0.5, 0.8]))
        line = render_box_line(stats, width=40)
        assert len(line) == 40
        assert "|" in line and "=" in line

    def test_median_position_scales(self):
        low = BoxStats.from_values(np.array([0.1]))
        high = BoxStats.from_values(np.array([0.9]))
        assert render_box_line(low, width=50).index("|") < render_box_line(
            high, width=50
        ).index("|")

    def test_degenerate_distribution(self):
        stats = BoxStats.from_values(np.array([0.5]))
        line = render_box_line(stats, width=30)
        assert line.count("|") == 1
        assert line.count("-") == 0

    def test_render_boxes_layout(self):
        groups = {
            "a": BoxStats.from_values(np.array([0.4, 0.6])),
            "bb": BoxStats.from_values(np.array([0.9])),
        }
        text = render_boxes(groups, width=30)
        lines = text.splitlines()
        assert len(lines) == 3  # header + 2 groups
        assert "mean" in lines[1]

    def test_render_boxes_empty(self):
        assert render_boxes({}) == "(no data)"

    def test_invalid_width(self):
        stats = BoxStats.from_values(np.array([0.5]))
        with pytest.raises(ValueError):
            render_box_line(stats, width=5)

    def test_invalid_range(self):
        stats = BoxStats.from_values(np.array([0.5]))
        with pytest.raises(ValueError):
            render_box_line(stats, lo=1.0, hi=0.0)


class TestPaperData:
    def test_every_paper_artifact_has_anchors(self):
        # The capability matrix reproduces extended-version content with
        # no quoted numbers; every in-paper artifact has anchors.
        assert set(PAPER) == set(EXPERIMENT_ORDER) - {"capability"}

    def test_anchor_values_traceable(self):
        for experiment_id, anchors in PAPER.items():
            for key, anchor in anchors.items():
                assert anchor.source, (experiment_id, key)
                assert anchor.metric, (experiment_id, key)

    def test_headline_numbers(self):
        assert PAPER["fig7"]["1 dst"].value == pytest.approx(0.9837)
        assert PAPER["fig15"]["AND n=16"].value == pytest.approx(0.9494)
        assert anchors_for("nonexistent") == {}


class TestCompare:
    def test_group_mean_extraction(self):
        result = ExperimentResult("fig7", "t")
        result.add_group("1 dst", BoxStats.from_values(np.array([0.97])))
        result.add_group("32 dst", BoxStats.from_values(np.array([0.09])))
        rows = compare_experiment(result)
        by_metric = {row.metric: row for row in rows}
        row = by_metric["NOT mean, 1 destination row"]
        assert row.measured_value == pytest.approx(0.97)
        assert row.delta == pytest.approx(0.97 - 0.9837)

    def test_missing_groups_yield_none(self):
        result = ExperimentResult("fig7", "t")
        rows = compare_experiment(result)
        assert all(row.measured_value is None for row in rows)
        assert all(row.delta is None for row in rows)

    def test_extras_extraction(self):
        result = ExperimentResult("fig8", "t")
        result.extras["n2n_minus_nn_mean"] = 0.1
        (row,) = compare_experiment(result)
        assert row.measured_value == pytest.approx(0.1)

    def test_heatmap_extraction(self):
        result = ExperimentResult("fig9", "t")
        result.extras["heatmap"] = {(1, 2): 0.85, (2, 0): 0.44}
        rows = {r.metric: r for r in compare_experiment(result)}
        assert rows["NOT mean, Middle src / Far dst"].measured_value == 0.85
        assert rows["NOT mean, Far src / Close dst"].measured_value == 0.44

    def test_series_extraction(self):
        result = ExperimentResult("fig16", "t")
        result.extras["series"] = {
            "AND16": [0.95] + [0.9] * 14 + [0.4, 0.5],
            "OR16": [0.5, 0.45] + [0.9] * 14 + [0.97],
        }
        rows = {r.metric: r for r in compare_experiment(result)}
        assert rows["16-input AND, 0 vs 15 logic-1s"].measured_value == (
            pytest.approx(0.55)
        )
        assert rows["16-input OR, 16 vs 1 logic-1s"].measured_value == (
            pytest.approx(0.52)
        )


class TestReport:
    def test_single_experiment_report(self):
        content = generate_report(
            SMOKE.with_trials(20), seed=1, experiment_ids=["table1"]
        )
        assert "table1" in content
        assert "| metric | paper | measured |" in content
        assert "256" in content

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            generate_report(SMOKE, experiment_ids=["fig99"])

    def test_report_mentions_scale_and_seed(self):
        content = generate_report(
            SMOKE.with_trials(20), seed=5, experiment_ids=["table1"]
        )
        assert "`smoke`" in content
        assert "seed: 5" in content
