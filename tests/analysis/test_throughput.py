"""Tests for the analytic throughput model."""

import pytest

from repro import sk_hynix_chip
from repro.analysis.throughput import estimate_throughput


class TestThroughput:
    def test_in_dram_beats_bus_by_an_order_of_magnitude(self):
        estimate = estimate_throughput(sk_hynix_chip())
        assert estimate.speedup_vs_bus > 10

    def test_bits_per_op_is_half_rank_row(self):
        estimate = estimate_throughput(
            sk_hynix_chip(), row_bits_per_chip=8192, chips_per_rank=8
        )
        assert estimate.bits_per_op == 8192 // 2 * 8

    def test_sequence_cost_dominated_by_restore(self):
        from repro.dram.timing import timing_for_speed

        timing = timing_for_speed(2666)
        estimate = estimate_throughput(sk_hynix_chip())
        assert estimate.op_sequence_ns > timing.t_ras
        assert estimate.op_sequence_ns < 4 * timing.t_rc

    def test_faster_bus_narrows_the_gap(self):
        slow = estimate_throughput(sk_hynix_chip(speed_rate_mts=2133))
        fast = estimate_throughput(sk_hynix_chip(speed_rate_mts=3200))
        assert fast.bus_gbps > slow.bus_gbps

    def test_more_inputs_cost_more_bus_time_not_more_op_time(self):
        two = estimate_throughput(sk_hynix_chip(), n_inputs=2)
        sixteen = estimate_throughput(sk_hynix_chip(), n_inputs=16)
        assert sixteen.op_sequence_ns == two.op_sequence_ns
        assert sixteen.bus_transfer_ns > two.bus_transfer_ns

    def test_rejects_single_input(self):
        with pytest.raises(ValueError):
            estimate_throughput(sk_hynix_chip(), n_inputs=1)
