"""Tests for the deterministic seed tree."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rng import SeedTree, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_different_roots_differ(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_different_paths_differ(self):
        assert derive_seed(1, "x") != derive_seed(1, "y")

    def test_path_depth_matters(self):
        assert derive_seed(1, "x") != derive_seed(1, "x", "x")

    def test_64_bit_range(self):
        seed = derive_seed(12345, "label")
        assert 0 <= seed < (1 << 64)

    @given(st.integers(min_value=0, max_value=2**64 - 1), st.text(max_size=40))
    def test_always_in_range(self, root, label):
        assert 0 <= derive_seed(root, label) < (1 << 64)

    def test_path_is_not_concatenation_ambiguous(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")


class TestSeedTree:
    def test_child_deterministic(self):
        assert SeedTree(5).child("x", "y") == SeedTree(5).child("x", "y")

    def test_child_no_path_is_self(self):
        tree = SeedTree(5)
        assert tree.child() == tree

    def test_generators_reproducible(self):
        a = SeedTree(9).child("m").generator().integers(1 << 30, size=4)
        b = SeedTree(9).child("m").generator().integers(1 << 30, size=4)
        assert np.array_equal(a, b)

    def test_sibling_streams_independent(self):
        a = SeedTree(9).child("m0").generator().integers(1 << 30, size=4)
        b = SeedTree(9).child("m1").generator().integers(1 << 30, size=4)
        assert not np.array_equal(a, b)

    def test_uniform_hash_range_and_determinism(self):
        tree = SeedTree(3)
        value = tree.uniform_hash("k")
        assert 0.0 <= value < 1.0
        assert value == SeedTree(3).uniform_hash("k")

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_uniform_hash_roughly_uniform(self, seed):
        tree = SeedTree(seed)
        values = [tree.uniform_hash(f"v{i}") for i in range(50)]
        assert 0.0 <= min(values) and max(values) < 1.0
        # Not all identical (astronomically unlikely for a good hash).
        assert len(set(values)) > 1

    def test_hashable(self):
        assert len({SeedTree(1), SeedTree(1), SeedTree(2)}) == 2
