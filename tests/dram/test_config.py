"""Tests for chip/module configuration."""

import pytest

from repro.dram.config import (
    ActivationSupport,
    ChipConfig,
    ChipGeometry,
    Manufacturer,
    ModuleSpec,
)
from repro.errors import AddressError, ConfigurationError


class TestChipGeometry:
    def test_defaults_are_consistent(self):
        geometry = ChipGeometry()
        assert geometry.rows_per_bank == (
            geometry.subarrays_per_bank * geometry.rows_per_subarray
        )
        assert geometry.blocks_per_subarray * geometry.lwl_block_rows == (
            geometry.rows_per_subarray
        )

    def test_row_address_round_trip(self):
        geometry = ChipGeometry(subarrays_per_bank=4, rows_per_subarray=64)
        for row in (0, 63, 64, 200, 255):
            subarray = geometry.subarray_of_row(row)
            local = geometry.local_row(row)
            assert geometry.bank_row(subarray, local) == row

    def test_rejects_odd_columns(self):
        with pytest.raises(ConfigurationError):
            ChipGeometry(columns=63)

    def test_rejects_single_subarray(self):
        with pytest.raises(ConfigurationError):
            ChipGeometry(subarrays_per_bank=1)

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ConfigurationError):
            ChipGeometry(lwl_block_rows=12)

    def test_rejects_rows_not_multiple_of_block(self):
        with pytest.raises(ConfigurationError):
            ChipGeometry(rows_per_subarray=100)

    def test_check_row_out_of_range(self):
        geometry = ChipGeometry(subarrays_per_bank=2, rows_per_subarray=64)
        with pytest.raises(AddressError):
            geometry.check_row(128)
        with pytest.raises(AddressError):
            geometry.check_row(-1)

    def test_bank_row_validates(self):
        geometry = ChipGeometry(subarrays_per_bank=2, rows_per_subarray=64)
        with pytest.raises(ConfigurationError):
            geometry.bank_row(2, 0)
        with pytest.raises(ConfigurationError):
            geometry.bank_row(0, 64)


class TestChipConfig:
    def test_die_label(self):
        config = ChipConfig(Manufacturer.SK_HYNIX, density_gb=4, die_revision="M")
        assert config.die_label == "SK Hynix 4Gb M-die"

    def test_rejects_unknown_density(self):
        with pytest.raises(ConfigurationError):
            ChipConfig(Manufacturer.SK_HYNIX, density_gb=3)

    def test_rejects_unknown_speed(self):
        with pytest.raises(ConfigurationError):
            ChipConfig(Manufacturer.SK_HYNIX, speed_rate_mts=1866)

    def test_rejects_bad_max_n(self):
        with pytest.raises(ConfigurationError):
            ChipConfig(Manufacturer.SK_HYNIX, max_simultaneous_n=12)

    def test_with_geometry_replaces_only_geometry(self):
        config = ChipConfig(Manufacturer.SAMSUNG, density_gb=8, die_revision="D")
        geometry = ChipGeometry(banks=2, subarrays_per_bank=2, rows_per_subarray=96)
        updated = config.with_geometry(geometry)
        assert updated.geometry is geometry
        assert updated.manufacturer is Manufacturer.SAMSUNG
        assert updated.die_revision == "D"


class TestModuleSpec:
    def _spec(self, **kwargs):
        defaults = dict(
            name="test",
            chip=ChipConfig(Manufacturer.SK_HYNIX),
            chips_per_module=8,
            module_count=2,
        )
        defaults.update(kwargs)
        return ModuleSpec(**defaults)

    def test_total_chips(self):
        assert self._spec().total_chips == 16

    def test_rejects_zero_modules(self):
        with pytest.raises(ConfigurationError):
            self._spec(module_count=0)

    def test_table_row_shape(self):
        row = self._spec(manufacture_date="18-14").table_row()
        assert len(row) == 7
        assert row[0] == "SK Hynix"
        assert row[1] == "2 (16)"
        assert row[3] == "18-14"

    def test_table_row_na_date(self):
        assert self._spec().table_row()[3] == "N/A"
