"""Sanity at the realistic (paper-sized) chip geometry.

The characterization sweeps use reduced geometries for speed; this test
exercises the default full-size geometry — 16 banks x 8 subarrays x 640
rows x 128 columns per chip, the shape the FULL scale uses — end to end
once, to guarantee nothing in the address math or decoder alignment
assumes the small test dimensions.
"""

import numpy as np
import pytest

from repro import SeedTree, sk_hynix_chip
from repro.bender import DramBenderHost
from repro.core import NotSuccessMeasurement, find_pattern_pair
from repro.dram import ActivationKind, Module


@pytest.fixture(scope="module")
def full_host():
    module = Module(sk_hynix_chip(), chip_count=1, seed_tree=SeedTree(77))
    return DramBenderHost(module)


class TestFullGeometry:
    def test_geometry_is_paper_sized(self, full_host):
        geometry = full_host.module.config.geometry
        assert geometry.banks == 16
        assert geometry.subarrays_per_bank == 8
        assert geometry.rows_per_subarray == 640
        assert geometry.columns == 128

    def test_row_io_round_trip_high_bank(self, full_host):
        bits = np.random.default_rng(0).integers(
            0, 2, full_host.module.row_bits, dtype=np.uint8
        )
        last_row = full_host.module.config.geometry.rows_per_bank - 1
        full_host.write_row(15, last_row, bits)
        assert np.array_equal(full_host.read_row(15, last_row), bits)

    def test_not_measurement_on_last_subarray_pair(self, full_host):
        geometry = full_host.module.config.geometry
        src, dst = find_pattern_pair(
            full_host.module.decoder, geometry, 3, 6, 7, 4,
            ActivationKind.N_TO_N,
        )
        measurement = NotSuccessMeasurement(full_host, 3, src, dst)
        result = measurement.run(15, np.random.default_rng(1))
        assert 0.5 < result.mean_rate <= 1.0

    def test_n2n_32_destination_pattern_exists(self, full_host):
        geometry = full_host.module.config.geometry
        src, dst = find_pattern_pair(
            full_host.module.decoder, geometry, 0, 0, 1, 16,
            ActivationKind.N_TO_2N,
        )
        pattern = full_host.module.decoder.neighboring_pattern(0, src, dst)
        assert pattern.n_last == 32
        # The 32-row block must stay within the subarray.
        assert max(pattern.rows_last) < geometry.rows_per_subarray

    def test_memory_footprint_is_lazy(self, full_host):
        # Only the banks the tests touched exist.
        instantiated = len(list(full_host.module.chips[0].instantiated_banks()))
        assert instantiated < full_host.module.config.geometry.banks
