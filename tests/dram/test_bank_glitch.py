"""Tests for the multi-row activation glitch paths of the bank engine."""

import numpy as np
import pytest

from repro import SeedTree, ideal_calibration
from repro.bender import DramBenderHost
from repro.core.sequences import logic_program, not_program
from repro.dram.decoder import ActivationKind
from repro.dram.module import Module


def random_bits(host, seed=0):
    return np.random.default_rng(seed).integers(
        0, 2, host.module.row_bits, dtype=np.uint8
    )


def find_pair(host, bank, sub_a, sub_b, n, kind, seed=0):
    from repro.core.addressing import find_pattern_pair

    return find_pattern_pair(
        host.module.decoder,
        host.module.config.geometry,
        bank,
        sub_a,
        sub_b,
        n,
        kind,
        seed=seed,
    )


class TestNotRegime:
    def test_not_inverts_shared_half_only(self, ideal_host):
        src, dst = find_pair(ideal_host, 0, 0, 1, 1, ActivationKind.N_TO_N)
        src_bits = random_bits(ideal_host, 3)
        dst_init = random_bits(ideal_host, 4)
        ideal_host.fill_row(0, src, src_bits)
        ideal_host.fill_row(0, dst, dst_init)
        ideal_host.run(not_program(ideal_host.timing, 0, src, dst))

        bank = ideal_host.module.chips[0].bank(0)
        shared = bank.shared_columns(0, 1)
        unshared = np.setdiff1d(np.arange(bank.columns), shared)
        out = ideal_host.peek_row(0, dst)
        assert np.array_equal(out[shared], 1 - src_bits[shared])
        # The other half connects to the far stripe: retained (Obs. 1).
        assert np.array_equal(out[unshared], dst_init[unshared])

    def test_source_row_unharmed(self, ideal_host):
        src, dst = find_pair(ideal_host, 0, 0, 1, 1, ActivationKind.N_TO_N)
        src_bits = random_bits(ideal_host, 5)
        ideal_host.fill_row(0, src, src_bits)
        ideal_host.run(not_program(ideal_host.timing, 0, src, dst))
        assert np.array_equal(ideal_host.peek_row(0, src), src_bits)

    def test_multi_destination_rows_all_written(self, ideal_host):
        src, dst = find_pair(ideal_host, 0, 0, 1, 4, ActivationKind.N_TO_N)
        pattern = ideal_host.module.decoder.neighboring_pattern(0, src, dst)
        src_bits = random_bits(ideal_host, 6)
        ideal_host.fill_row(0, src, src_bits)
        ideal_host.run(not_program(ideal_host.timing, 0, src, dst))

        geometry = ideal_host.module.config.geometry
        bank = ideal_host.module.chips[0].bank(0)
        shared = bank.shared_columns(0, 1)
        for local in pattern.rows_last:
            row = geometry.bank_row(1, local)
            out = ideal_host.peek_row(0, row)
            assert np.array_equal(out[shared], 1 - src_bits[shared])

    def test_extra_source_rows_copy_src(self, ideal_host):
        src, dst = find_pair(ideal_host, 0, 0, 1, 4, ActivationKind.N_TO_N)
        pattern = ideal_host.module.decoder.neighboring_pattern(0, src, dst)
        assert pattern.n_first == 4
        src_bits = random_bits(ideal_host, 7)
        ideal_host.fill_row(0, src, src_bits)
        ideal_host.run(not_program(ideal_host.timing, 0, src, dst))

        geometry = ideal_host.module.config.geometry
        for local in pattern.rows_first:
            row = geometry.bank_row(0, local)
            # All source-side activated rows end at src's value: the
            # shared half from the shared stripe, the rest from the far
            # stripe — both latched at src.
            assert np.array_equal(ideal_host.peek_row(0, row), src_bits)


class TestLogicRegime:
    @pytest.mark.parametrize("fill", [0, 1])
    def test_uniform_inputs(self, ideal_host, fill):
        ref, com = find_pair(ideal_host, 0, 2, 3, 4, ActivationKind.N_TO_N)
        from repro.core.logic import LogicOperation

        operation = LogicOperation(ideal_host, 0, ref, com, op="and")
        operands = [
            np.full(ideal_host.module.row_bits, fill, dtype=np.uint8)
            for _ in range(operation.n_inputs)
        ]
        outcome = operation.run(operands)
        assert np.all(outcome.result == fill)

    def test_nand_is_complement_of_and(self, ideal_host):
        ref, com = find_pair(ideal_host, 0, 2, 3, 4, ActivationKind.N_TO_N)
        from repro.core.logic import LogicOperation

        operands = [random_bits(ideal_host, 10 + i) for i in range(4)]
        and_op = LogicOperation(ideal_host, 0, ref, com, op="and")
        and_result = and_op.run(operands).result
        nand_op = LogicOperation(ideal_host, 0, ref, com, op="nand")
        nand_result = nand_op.run(operands).result
        assert np.array_equal(nand_result, 1 - and_result)


class TestManufacturerPolicies:
    def test_samsung_not_single_destination(self, samsung_host):
        # Sequential activation still gives a working NOT with one
        # destination row (§5.3) — allow the rare stochastic cell error.
        src = samsung_host.module.config.geometry.bank_row(0, 10)
        dst = samsung_host.module.config.geometry.bank_row(1, 20)
        src_bits = random_bits(samsung_host, 11)
        samsung_host.fill_row(0, src, src_bits)
        samsung_host.fill_row(0, dst, 1 - src_bits)
        samsung_host.run(not_program(samsung_host.timing, 0, src, dst))
        bank = samsung_host.module.chips[0].bank(0)
        shared = bank.shared_columns(0, 1)
        out = samsung_host.peek_row(0, dst)
        match = np.mean(out[shared] == 1 - src_bits[shared])
        assert match > 0.85

    def test_samsung_never_multi_row(self, samsung_host):
        pattern = samsung_host.module.decoder.neighboring_pattern(0, 5, 192 + 9)
        assert pattern.kind is ActivationKind.SEQUENTIAL
        assert pattern.n_first == pattern.n_last == 1

    def test_samsung_logic_op_fails(self, samsung_host):
        # §6.3: no AND/OR observed on Samsung chips.  The sequence
        # executes but the compute rows do not receive the AND result.
        geometry = samsung_host.module.config.geometry
        ref = geometry.bank_row(0, 8)
        com = geometry.bank_row(1, 24)
        operand = np.ones(samsung_host.module.row_bits, dtype=np.uint8)
        zero = np.zeros_like(operand)
        samsung_host.fill_row(0, ref, zero)  # OR-style reference
        samsung_host.fill_row(0, com, operand)
        samsung_host.run(logic_program(samsung_host.timing, 0, ref, com))
        bank = samsung_host.module.chips[0].bank(0)
        shared = bank.shared_columns(0, 1)
        out = samsung_host.peek_row(0, com)
        # A working 1-input-ish OR would keep the compute row all-1s on
        # shared columns; the sequential chip instead drives ~ref there.
        assert not np.all(out[shared] == 1)

    def test_micron_ignores_violating_sequence(self, micron_host):
        src = micron_host.module.config.geometry.bank_row(0, 10)
        dst = micron_host.module.config.geometry.bank_row(1, 20)
        src_bits = random_bits(micron_host, 12)
        dst_init = random_bits(micron_host, 13)
        micron_host.fill_row(0, src, src_bits)
        micron_host.fill_row(0, dst, dst_init)
        micron_host.run(not_program(micron_host.timing, 0, src, dst))
        # Nothing happened: the destination row is untouched (§7).
        assert np.array_equal(micron_host.peek_row(0, dst), dst_init)

    def test_micron_counts_ignored_commands(self, micron_host):
        src = micron_host.module.config.geometry.bank_row(0, 10)
        dst = micron_host.module.config.geometry.bank_row(1, 20)
        micron_host.run(not_program(micron_host.timing, 0, src, dst))
        bank = micron_host.module.chips[0].bank(0)
        assert bank.ignored_commands >= 1

    def test_micron_nominal_operation_still_works(self, micron_host):
        bits = random_bits(micron_host, 14)
        micron_host.write_row(0, 33, bits)
        assert np.array_equal(micron_host.read_row(0, 33), bits)


class TestEngagementFailure:
    def test_failed_engagement_leaves_state_clean(self, hynix_config):
        # With engagement probability forced to zero, the sequence
        # degenerates to two independent activations.
        from dataclasses import replace

        calibration = replace(
            ideal_calibration(),
            not_engage_probability=0.0,
        )
        module = Module(
            hynix_config, chip_count=1, seed_tree=SeedTree(3), calibration=calibration
        )
        host = DramBenderHost(module)
        from repro.core.addressing import find_pattern_pair

        src, dst = find_pattern_pair(
            module.decoder, hynix_config.geometry, 0, 0, 1, 1,
            ActivationKind.N_TO_N,
        )
        src_bits = random_bits(host, 15)
        dst_init = random_bits(host, 16)
        host.fill_row(0, src, src_bits)
        host.fill_row(0, dst, dst_init)
        host.run(not_program(host.timing, 0, src, dst))
        assert np.array_equal(host.peek_row(0, dst), dst_init)
        assert np.array_equal(host.peek_row(0, src), src_bits)
