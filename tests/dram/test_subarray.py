"""Tests for subarray state and the structured row scramble."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.subarray import Subarray
from repro.dram.variation import Region
from repro.errors import AddressError
from repro.rng import SeedTree


def make_subarray(rows=96, columns=16, seed=3, scramble=True):
    return Subarray(0, rows, columns, SeedTree(seed), scramble_rows=scramble)


class TestScramble:
    def test_is_permutation(self):
        subarray = make_subarray()
        positions = sorted(subarray.physical_position(r) for r in range(96))
        assert positions == list(range(96))

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=20, deadline=None)
    def test_always_permutation(self, seed):
        subarray = make_subarray(seed=seed)
        positions = {subarray.physical_position(r) for r in range(96)}
        assert positions == set(range(96))

    def test_blocks_stay_contiguous(self):
        # The structured scramble keeps each 16-row logical block in one
        # physical block (that is what makes Close/Far multi-row
        # activated sets possible — see Fig. 9).
        subarray = make_subarray(rows=96)
        for block in range(96 // 16):
            physical_blocks = {
                subarray.physical_position(block * 16 + i) // 16
                for i in range(16)
            }
            assert len(physical_blocks) == 1

    def test_scramble_is_nontrivial(self):
        subarray = make_subarray()
        identity = all(subarray.physical_position(r) == r for r in range(96))
        assert not identity

    def test_unscrambled_is_identity(self):
        subarray = make_subarray(scramble=False)
        assert all(subarray.physical_position(r) == r for r in range(96))

    def test_round_trip(self):
        subarray = make_subarray()
        for row in range(96):
            position = subarray.physical_position(row)
            assert subarray.logical_at_physical(position) == row

    def test_deterministic_per_seed(self):
        a = make_subarray(seed=5)
        b = make_subarray(seed=5)
        assert all(
            a.physical_position(r) == b.physical_position(r) for r in range(96)
        )


class TestNeighbors:
    def test_interior_rows_have_two_neighbors(self):
        subarray = make_subarray()
        interior = subarray.logical_at_physical(40)
        assert len(subarray.physical_neighbors(interior)) == 2

    def test_edge_rows_have_one_neighbor(self):
        subarray = make_subarray()
        lower_edge = subarray.logical_at_physical(0)
        upper_edge = subarray.logical_at_physical(95)
        assert len(subarray.physical_neighbors(lower_edge)) == 1
        assert len(subarray.physical_neighbors(upper_edge)) == 1

    def test_neighbor_relation_is_symmetric(self):
        subarray = make_subarray()
        for row in range(0, 96, 7):
            for neighbor in subarray.physical_neighbors(row):
                assert row in subarray.physical_neighbors(neighbor)


class TestRegions:
    def test_distance_to_both_stripes(self):
        subarray = make_subarray()
        row = subarray.logical_at_physical(0)
        assert subarray.distance_to_stripe(row, upper=False) == 0
        assert subarray.distance_to_stripe(row, upper=True) == 95

    def test_region_terciles(self):
        subarray = make_subarray()
        assert subarray.region_to_stripe(
            subarray.logical_at_physical(0), upper=False
        ) is Region.CLOSE
        assert subarray.region_to_stripe(
            subarray.logical_at_physical(48), upper=False
        ) is Region.MIDDLE
        assert subarray.region_to_stripe(
            subarray.logical_at_physical(95), upper=False
        ) is Region.FAR

    def test_region_of_rows_uses_mean(self):
        subarray = make_subarray()
        close = subarray.logical_at_physical(0)
        far = subarray.logical_at_physical(95)
        assert subarray.region_of_rows([close, far], upper=False) is Region.MIDDLE


class TestDataAccess:
    def test_write_read_bits_round_trip(self):
        subarray = make_subarray()
        bits = np.random.default_rng(0).integers(0, 2, 16, dtype=np.uint8)
        subarray.write_bits(10, bits)
        assert np.array_equal(subarray.read_bits(10), bits)

    def test_write_voltages_clipped(self):
        subarray = make_subarray()
        subarray.write_voltages(5, np.full(16, 2.0))
        assert np.all(subarray.read_voltages(5) == 1.0)

    def test_fill(self):
        subarray = make_subarray()
        subarray.fill(1)
        assert np.all(subarray.voltages == 1.0)
        subarray.fill(0)
        assert np.all(subarray.voltages == 0.0)

    def test_wrong_width_rejected(self):
        subarray = make_subarray()
        with pytest.raises(ValueError):
            subarray.write_bits(0, np.zeros(8, dtype=np.uint8))

    def test_row_out_of_range(self):
        subarray = make_subarray()
        with pytest.raises(AddressError):
            subarray.read_bits(96)

    def test_read_voltages_returns_copy(self):
        subarray = make_subarray()
        volts = subarray.read_voltages(0)
        volts[:] = 0.7
        assert np.all(subarray.read_voltages(0) == 0.0)
