"""Tests for chip and lock-step module assemblies."""

import numpy as np
import pytest

from repro import SeedTree, sk_hynix_chip
from repro.dram.chip import Chip
from repro.dram.module import Module
from repro.errors import AddressError, ConfigurationError


class TestChip:
    def test_banks_lazy(self, hynix_config):
        chip = Chip(hynix_config, SeedTree(1))
        assert len(list(chip.instantiated_banks())) == 0
        chip.bank(0)
        assert len(list(chip.instantiated_banks())) == 1

    def test_bank_cached(self, hynix_config):
        chip = Chip(hynix_config, SeedTree(1))
        assert chip.bank(0) is chip.bank(0)

    def test_bank_out_of_range(self, hynix_config):
        chip = Chip(hynix_config, SeedTree(1))
        with pytest.raises(AddressError):
            chip.bank(hynix_config.geometry.banks)

    def test_temperature_propagates_to_existing_and_new_banks(self, hynix_config):
        chip = Chip(hynix_config, SeedTree(1))
        bank0 = chip.bank(0)
        chip.temperature_c = 80.0
        assert bank0.temperature_c == 80.0
        assert chip.bank(1).temperature_c == 80.0

    def test_release_banks(self, hynix_config):
        chip = Chip(hynix_config, SeedTree(1))
        chip.bank(0)
        chip.release_banks()
        assert len(list(chip.instantiated_banks())) == 0


class TestModule:
    def test_row_bits(self, hynix_config):
        module = Module(hynix_config, chip_count=2, seed_tree=SeedTree(1))
        assert module.row_bits == 2 * hynix_config.geometry.columns

    def test_chip_slices_partition_row(self, hynix_config):
        module = Module(hynix_config, chip_count=4, seed_tree=SeedTree(1))
        covered = []
        for i in range(4):
            s = module.chip_slice(i)
            covered.extend(range(s.start, s.stop))
        assert covered == list(range(module.row_bits))

    def test_store_load_striped(self, hynix_config):
        module = Module(hynix_config, chip_count=2, seed_tree=SeedTree(1))
        bits = np.random.default_rng(0).integers(0, 2, module.row_bits, np.uint8)
        module.store_bits(0, 7, bits)
        assert np.array_equal(module.load_bits(0, 7), bits)
        # Each chip holds its slice.
        chip0 = module.chips[0].bank(0).load_bits(7)
        assert np.array_equal(chip0, bits[module.chip_slice(0)])

    def test_chips_share_decoder(self, hynix_config):
        module = Module(hynix_config, chip_count=3, seed_tree=SeedTree(1))
        assert all(chip.decoder is module.decoder for chip in module.chips)

    def test_lockstep_glitch_consistency(self, hynix_config):
        # All chips must activate the same rows under the same commands.
        module = Module(hynix_config, chip_count=2, seed_tree=SeedTree(1))
        pattern_a = module.chips[0].decoder.neighboring_pattern(0, 5, 192 + 9)
        pattern_b = module.chips[1].decoder.neighboring_pattern(0, 5, 192 + 9)
        assert pattern_a == pattern_b

    def test_chips_have_distinct_variation(self, hynix_config):
        module = Module(hynix_config, chip_count=2, seed_tree=SeedTree(1))
        a = module.chips[0].bank(0).stripes[1].offsets
        b = module.chips[1].bank(0).stripes[1].offsets
        assert not np.array_equal(a, b)

    def test_row_scramble_identical_across_chips(self, hynix_config):
        # Physical row order is a die-design property (§5.2).
        module = Module(hynix_config, chip_count=2, seed_tree=SeedTree(1))
        a = module.chips[0].bank(0).subarrays[0]
        b = module.chips[1].bank(0).subarrays[0]
        assert all(
            a.physical_position(r) == b.physical_position(r) for r in range(192)
        )

    def test_temperature_fanout(self, hynix_config):
        module = Module(hynix_config, chip_count=2, seed_tree=SeedTree(1))
        module.temperature_c = 70.0
        assert all(chip.temperature_c == 70.0 for chip in module.chips)

    def test_wrong_width_rejected(self, hynix_config):
        module = Module(hynix_config, chip_count=2, seed_tree=SeedTree(1))
        with pytest.raises(ValueError):
            module.store_bits(0, 0, np.zeros(3, dtype=np.uint8))

    def test_zero_chips_rejected(self, hynix_config):
        with pytest.raises(ConfigurationError):
            Module(hynix_config, chip_count=0)

    def test_from_spec_reduced_chip_count(self, hynix_config):
        from repro.dram.config import ModuleSpec

        spec = ModuleSpec("s", hynix_config, chips_per_module=8, module_count=2)
        module = Module.from_spec(spec, chip_count=2, seed_tree=SeedTree(0))
        assert module.chip_count == 2

    def test_release_state(self, hynix_config):
        module = Module(hynix_config, chip_count=2, seed_tree=SeedTree(1))
        module.store_bits(0, 0, np.zeros(module.row_bits, dtype=np.uint8))
        module.release_state()
        assert all(
            len(list(chip.instantiated_banks())) == 0 for chip in module.chips
        )

    def test_reproducible_across_instances(self, hynix_config):
        a = Module(hynix_config, chip_count=1, seed_tree=SeedTree(42))
        b = Module(hynix_config, chip_count=1, seed_tree=SeedTree(42))
        sa = a.chips[0].bank(0).stripes[1].offsets
        sb = b.chips[0].bank(0).stripes[1].offsets
        assert np.array_equal(sa, sb)
