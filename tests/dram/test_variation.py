"""Tests for process and design-induced variation models."""

import numpy as np
import pytest

from repro.dram.calibration import REFERENCE_CALIBRATION, ideal_calibration
from repro.dram.variation import DistanceRegions, Region, StripeVariation
from repro.rng import SeedTree


class TestRegions:
    def test_three_equal_regions(self):
        regions = DistanceRegions(96)
        counts = {region: 0 for region in Region}
        for distance in range(96):
            counts[regions.region_of_distance(distance)] += 1
        assert counts[Region.CLOSE] == 32
        assert counts[Region.MIDDLE] == 32
        assert counts[Region.FAR] == 32

    def test_ordering(self):
        regions = DistanceRegions(96)
        assert regions.region_of_distance(0) is Region.CLOSE
        assert regions.region_of_distance(95) is Region.FAR

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            DistanceRegions(96).region_of_distance(96)

    def test_mean_distance_region(self):
        regions = DistanceRegions(96)
        assert regions.region_of_mean_distance([0, 95]) is Region.MIDDLE
        assert regions.region_of_mean_distance([0, 1, 2]) is Region.CLOSE

    def test_mean_requires_values(self):
        with pytest.raises(ValueError):
            DistanceRegions(96).region_of_mean_distance([])

    def test_too_few_rows(self):
        with pytest.raises(ValueError):
            DistanceRegions(2)

    def test_region_str(self):
        assert str(Region.CLOSE) == "Close"
        assert str(Region.FAR) == "Far"


class TestStripeVariation:
    def test_shapes(self):
        stripe = StripeVariation(64, REFERENCE_CALIBRATION, SeedTree(1))
        assert stripe.offsets.shape == (64,)
        assert stripe.strengths.shape == (64,)
        assert stripe.columns == 64

    def test_deterministic(self):
        a = StripeVariation(64, REFERENCE_CALIBRATION, SeedTree(1))
        b = StripeVariation(64, REFERENCE_CALIBRATION, SeedTree(1))
        assert np.array_equal(a.offsets, b.offsets)
        assert np.array_equal(a.strengths, b.strengths)

    def test_different_seeds_differ(self):
        a = StripeVariation(64, REFERENCE_CALIBRATION, SeedTree(1))
        b = StripeVariation(64, REFERENCE_CALIBRATION, SeedTree(2))
        assert not np.array_equal(a.offsets, b.offsets)

    def test_distribution_parameters(self):
        calibration = REFERENCE_CALIBRATION
        stripe = StripeVariation(20000, calibration, SeedTree(5))
        assert stripe.offsets.mean() == pytest.approx(
            calibration.sa_offset_mean, abs=3 * calibration.sa_offset_sigma / 140
        )
        assert stripe.offsets.std() == pytest.approx(
            calibration.sa_offset_sigma, rel=0.05
        )

    def test_strong_population_exists(self):
        calibration = REFERENCE_CALIBRATION
        stripe = StripeVariation(20000, calibration, SeedTree(5))
        threshold = (
            calibration.drive_strength_mean + calibration.strong_sa_boost / 2
        )
        strong_fraction = np.mean(stripe.strengths > threshold)
        assert strong_fraction == pytest.approx(
            calibration.strong_sa_fraction, rel=0.4
        )

    def test_ideal_calibration_has_no_spread(self):
        stripe = StripeVariation(64, ideal_calibration(), SeedTree(1))
        assert np.all(stripe.offsets == 0.0)
        assert np.all(stripe.strengths == stripe.strengths[0])

    def test_rejects_zero_columns(self):
        with pytest.raises(ValueError):
            StripeVariation(0, REFERENCE_CALIBRATION, SeedTree(1))
