"""Tests for the per-die calibration tables."""

import pytest

from repro import micron_chip, samsung_chip, sk_hynix_chip
from repro.dram.calibration import (
    REFERENCE_CALIBRATION,
    calibration_for,
    ideal_calibration,
)
from repro.dram.config import ChipConfig, Manufacturer


class TestCalibrationLookup:
    def test_reference_die(self):
        calibration = calibration_for(sk_hynix_chip())
        assert calibration.drive_strength_mean > 0

    def test_unknown_die_falls_back_to_reference(self):
        config = ChipConfig(
            Manufacturer.SK_HYNIX, density_gb=16, die_revision="Z",
            speed_rate_mts=2666,
        )
        calibration = calibration_for(config)
        assert calibration.drive_strength_mean == pytest.approx(
            REFERENCE_CALIBRATION.drive_strength_mean
        )

    def test_speed_2400_weakens_drive(self):
        fast = calibration_for(sk_hynix_chip(speed_rate_mts=2400))
        nominal = calibration_for(sk_hynix_chip(speed_rate_mts=2666))
        assert fast.drive_strength_mean < nominal.drive_strength_mean

    def test_speed_2400_inflates_sensing_noise(self):
        fast = calibration_for(sk_hynix_chip(speed_rate_mts=2400))
        nominal = calibration_for(sk_hynix_chip(speed_rate_mts=2666))
        assert fast.sense_noise_sigma > nominal.sense_noise_sigma

    def test_samsung_die_ordering_matches_obs9(self):
        # Observation 9: Samsung A-die beats D-die.
        a_die = calibration_for(samsung_chip(die_revision="A", speed_rate_mts=3200))
        d_die = calibration_for(samsung_chip(die_revision="D", speed_rate_mts=2133))
        assert a_die.drive_strength_mean > d_die.drive_strength_mean

    def test_micron_config_instantiates(self):
        calibration = calibration_for(micron_chip())
        assert calibration is not None

    def test_engage_probability_nearest_fallback(self):
        calibration = REFERENCE_CALIBRATION
        assert calibration.engage_probability_for(16) == (
            calibration.op_engage_probability[16]
        )
        # 12 is closest to 16 among {2,4,8,16}? No: |12-8|=4, |12-16|=4;
        # min() picks the first encountered — just require a valid value.
        value = calibration.engage_probability_for(12)
        assert 0.0 < value <= 1.0


class TestIdealCalibration:
    def test_noise_free(self):
        ideal = ideal_calibration()
        assert ideal.sense_noise_sigma == 0.0
        assert ideal.sa_offset_sigma == 0.0
        assert ideal.coupling_noise_sigma == 0.0
        assert ideal.frac_noise_sigma == 0.0

    def test_always_engages(self):
        ideal = ideal_calibration()
        assert ideal.not_engage_probability == 1.0
        assert all(p == 1.0 for p in ideal.op_engage_probability.values())

    def test_drive_never_flips(self):
        # z = 38 means Phi(z) is 1.0 to double precision.
        ideal = ideal_calibration()
        assert ideal.drive_strength_mean - ideal.drive_load_alpha * 47 > 8

    def test_distance_matrices_zero(self):
        ideal = ideal_calibration()
        assert all(v == 0.0 for row in ideal.not_distance_z for v in row)
        assert all(v == 0.0 for row in ideal.op_distance_margin for v in row)


class TestDocstringPins:
    """Docstrings quoting concrete defaults are executable doctests.

    The module docstrings cite Scale preset trial counts, the
    reference-die anchoring, and the 2400 MT/s sour spot; those claims
    drift silently when constants change, so they are pinned here.
    """

    def test_calibration_docstrings_are_doctests(self):
        import doctest

        import repro.dram.calibration as calibration

        results = doctest.testmod(calibration)
        assert results.failed == 0
        assert results.attempted >= 10

    def test_success_docstrings_are_doctests(self):
        import doctest

        import repro.core.success as success

        results = doctest.testmod(success)
        assert results.failed == 0
        assert results.attempted >= 4

    def test_default_config_is_not_reference_verbatim(self):
        # The anchoring die (SK Hynix 4Gb M @ 2666) carries its own
        # sense_scale entry in the die table, so the reference constants
        # are a baseline for deltas, not that module's calibration.
        assert calibration_for(sk_hynix_chip()) != REFERENCE_CALIBRATION
        assert calibration_for(sk_hynix_chip()).sense_noise_sigma == pytest.approx(
            1.55 * REFERENCE_CALIBRATION.sense_noise_sigma
        )


class TestCalibrationAnchors:
    """The calibration constants must preserve the paper's orderings."""

    def test_not_drive_anchor_ordering(self):
        # Phi-model: success at 2 driven rows far exceeds 48 driven rows.
        calibration = REFERENCE_CALIBRATION
        z2 = calibration.drive_strength_mean - calibration.drive_load_alpha
        z48 = calibration.drive_strength_mean - 47 * calibration.drive_load_alpha
        assert z2 > 2.0
        assert z48 < 0.0

    def test_op_flip_much_milder_than_not_drive(self):
        calibration = REFERENCE_CALIBRATION
        assert calibration.op_flip_alpha < calibration.drive_load_alpha / 3

    def test_middle_far_is_best_not_region(self):
        matrix = REFERENCE_CALIBRATION.not_distance_z
        best = max(
            (matrix[src][dst], (src, dst)) for src in range(3) for dst in range(3)
        )
        assert best[1] == (1, 2)  # Middle source, Far destination (Obs. 6)

    def test_far_close_is_worst_not_region(self):
        matrix = REFERENCE_CALIBRATION.not_distance_z
        worst = min(
            (matrix[src][dst], (src, dst)) for src in range(3) for dst in range(3)
        )
        assert worst[1] == (2, 0)  # Far source, Close destination (Obs. 6)
