"""Tests for timing parameters and violation descriptors."""

import pytest

from repro.dram.timing import ReducedTiming, TimingParameters, timing_for_speed
from repro.errors import ConfigurationError


class TestTimingTable:
    @pytest.mark.parametrize("speed", [2133, 2400, 2666, 3200])
    def test_known_grades(self, speed):
        timing = timing_for_speed(speed)
        assert timing.speed_rate_mts == speed
        assert timing.t_ras > timing.t_rcd > timing.t_ck

    def test_unknown_grade(self):
        with pytest.raises(ConfigurationError):
            timing_for_speed(1600)

    def test_t_rc(self):
        timing = timing_for_speed(2666)
        assert timing.t_rc == pytest.approx(timing.t_ras + timing.t_rp)

    def test_clock_periods_descend_with_speed(self):
        periods = [timing_for_speed(s).t_ck for s in (2133, 2400, 2666, 3200)]
        assert periods == sorted(periods, reverse=True)


class TestCycleQuantization:
    def test_cycles_rounds_up(self):
        timing = timing_for_speed(2666)  # 0.75 ns clock
        assert timing.cycles(0.75) == 1
        assert timing.cycles(0.76) == 2
        assert timing.cycles(1.5) == 2

    def test_quantize_is_multiple_of_clock(self):
        timing = timing_for_speed(2400)
        quantized = timing.quantize(3.0)
        assert quantized >= 3.0
        assert quantized % timing.t_ck == pytest.approx(0.0, abs=1e-9)

    def test_cycles_rejects_negative(self):
        with pytest.raises(ValueError):
            timing_for_speed(2666).cycles(-1.0)


class TestReducedTiming:
    def test_for_logic_op_violates_both(self):
        timing = timing_for_speed(2666)
        reduced = ReducedTiming.for_logic_op(timing)
        assert reduced.violates_t_ras(timing)
        assert reduced.violates_t_rp(timing)
        # The paper keeps both gaps under 3 ns (§4.1).
        assert reduced.first_act_ns(timing) < 3.0
        assert reduced.pre_to_act_ns(timing) < 3.0

    def test_for_not_op_violates_only_trp(self):
        timing = timing_for_speed(2666)
        reduced = ReducedTiming.for_not_op(timing)
        assert not reduced.violates_t_ras(timing)
        assert reduced.violates_t_rp(timing)

    def test_nominal_violates_nothing(self):
        timing = timing_for_speed(2133)
        reduced = ReducedTiming.nominal(timing)
        assert not reduced.violates_t_ras(timing)
        assert not reduced.violates_t_rp(timing)

    def test_rejects_zero_cycles(self):
        with pytest.raises(ConfigurationError):
            ReducedTiming(first_act_cycles=0, pre_to_act_cycles=1)

    @pytest.mark.parametrize("speed", [2133, 2400, 2666, 3200])
    def test_logic_gap_quantization_differs_by_speed(self, speed):
        # The quantized sub-3ns gap differs in real nanoseconds per grade
        # — the root of the speed-rate sensitivity (Obs. 8/18).
        timing = timing_for_speed(speed)
        reduced = ReducedTiming.for_logic_op(timing)
        gap = reduced.pre_to_act_ns(timing)
        assert 0 < gap < 3.0
        assert gap == pytest.approx(reduced.pre_to_act_cycles * timing.t_ck)
