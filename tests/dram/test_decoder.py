"""Tests for the multi-row activation decoder models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.config import ActivationSupport, ChipConfig, ChipGeometry, Manufacturer
from repro.dram.decoder import (
    FIG5_COVERAGE,
    ActivationKind,
    CalibratedDecoder,
    HierarchicalRowDecoder,
    make_decoder,
)
from repro.errors import AddressError
from repro.rng import SeedTree

GEOMETRY = ChipGeometry(
    banks=2, subarrays_per_bank=4, rows_per_subarray=192, columns=64
)


def hynix(**overrides):
    defaults = dict(
        manufacturer=Manufacturer.SK_HYNIX,
        geometry=GEOMETRY,
        activation_support=ActivationSupport.SIMULTANEOUS,
    )
    defaults.update(overrides)
    return ChipConfig(**defaults)


def pairs(rng, count):
    for _ in range(count):
        yield int(rng.integers(192)), int(rng.integers(192))


class TestCalibratedDecoder:
    def setup_method(self):
        self.decoder = CalibratedDecoder(hynix(), SeedTree(3))

    def test_deterministic_per_pair(self):
        a = self.decoder.neighboring_pattern(0, 10, 192 + 20)
        b = self.decoder.neighboring_pattern(0, 10, 192 + 20)
        assert a == b

    def test_different_banks_can_differ(self):
        rng = np.random.default_rng(0)
        differs = False
        for local_f, local_l in pairs(rng, 50):
            a = self.decoder.neighboring_pattern(0, local_f, 192 + local_l)
            b = self.decoder.neighboring_pattern(1, local_f, 192 + local_l)
            if a != b:
                differs = True
                break
        assert differs

    def test_addressed_rows_inside_pattern(self):
        rng = np.random.default_rng(1)
        for local_f, local_l in pairs(rng, 200):
            pattern = self.decoder.neighboring_pattern(0, local_f, 192 + local_l)
            if pattern.kind is ActivationKind.LAST_ONLY:
                assert local_l in pattern.rows_last
                continue
            assert local_f in pattern.rows_first
            assert local_l in pattern.rows_last

    def test_kinds_respect_counts(self):
        rng = np.random.default_rng(2)
        for local_f, local_l in pairs(rng, 300):
            pattern = self.decoder.neighboring_pattern(0, local_f, 192 + local_l)
            if pattern.kind is ActivationKind.N_TO_N:
                assert pattern.n_first == pattern.n_last
            elif pattern.kind is ActivationKind.N_TO_2N:
                assert 2 * pattern.n_first == pattern.n_last

    def test_coverage_matches_fig5(self):
        rng = np.random.default_rng(3)
        counts = {}
        total = 4000
        for local_f, local_l in pairs(rng, total):
            pattern = self.decoder.neighboring_pattern(0, local_f, 192 + local_l)
            counts[(pattern.n_first, pattern.kind)] = (
                counts.get((pattern.n_first, pattern.kind), 0) + 1
            )
        for (n, kind), expected in FIG5_COVERAGE.items():
            observed = counts.get((n, kind), 0) / total
            # Loose band: 4000 samples, binomial noise.
            assert observed == pytest.approx(expected, abs=0.03)

    def test_non_neighbors_rejected(self):
        with pytest.raises(AddressError):
            self.decoder.neighboring_pattern(0, 10, 2 * 192 + 10)

    def test_rows_are_sorted_and_unique(self):
        rng = np.random.default_rng(4)
        for local_f, local_l in pairs(rng, 100):
            pattern = self.decoder.neighboring_pattern(0, local_f, 192 + local_l)
            for rows in (pattern.rows_first, pattern.rows_last):
                assert list(rows) == sorted(set(rows))

    def test_max_n_cap(self):
        capped = CalibratedDecoder(hynix(max_simultaneous_n=8), SeedTree(3))
        rng = np.random.default_rng(5)
        for local_f, local_l in pairs(rng, 400):
            pattern = capped.neighboring_pattern(0, local_f, 192 + local_l)
            assert pattern.n_first <= 8
            assert pattern.n_last <= 16

    def test_no_n2n_support_folds_into_nn(self):
        decoder = CalibratedDecoder(hynix(supports_n_to_2n=False), SeedTree(3))
        rng = np.random.default_rng(6)
        for local_f, local_l in pairs(rng, 400):
            pattern = decoder.neighboring_pattern(0, local_f, 192 + local_l)
            assert pattern.kind is not ActivationKind.N_TO_2N

    def test_sequential_only_chips(self):
        config = hynix(
            manufacturer=Manufacturer.SAMSUNG,
            activation_support=ActivationSupport.SEQUENTIAL_ONLY,
        )
        decoder = CalibratedDecoder(config, SeedTree(3))
        pattern = decoder.neighboring_pattern(0, 5, 192 + 9)
        assert pattern.kind is ActivationKind.SEQUENTIAL
        assert pattern.rows_first == (5,)
        assert pattern.rows_last == (9,)

    def test_same_subarray_pattern_contains_both(self):
        pattern = self.decoder.same_subarray_pattern(0, 10, 100)
        assert 10 in pattern.rows_first
        assert 100 in pattern.rows_first
        assert pattern.rows_first == pattern.rows_last

    def test_same_subarray_quad_activation(self):
        # Rows differing in two low bits within a block -> 4 rows (QUAC).
        pattern = self.decoder.same_subarray_pattern(0, 100, 103)
        assert len(pattern.rows_first) == 4

    def test_label(self):
        pattern = self.decoder.same_subarray_pattern(0, 100, 103)
        assert pattern.label() == "4:4"


class TestHierarchicalDecoder:
    def setup_method(self):
        self.decoder = HierarchicalRowDecoder(hynix())

    def test_union_size_is_power_of_two_of_hamming(self):
        rng = np.random.default_rng(7)
        for local_f, local_l in pairs(rng, 300):
            pattern = self.decoder.neighboring_pattern(0, local_f, 192 + local_l)
            if pattern.kind is ActivationKind.LAST_ONLY:
                continue
            hamming = bin((local_f % 16) ^ (local_l % 16)).count("1")
            assert pattern.n_first == 1 << hamming

    def test_union_contains_both_addresses(self):
        rng = np.random.default_rng(8)
        for local_f, local_l in pairs(rng, 300):
            pattern = self.decoder.neighboring_pattern(0, local_f, 192 + local_l)
            if pattern.kind is ActivationKind.LAST_ONLY:
                continue
            assert local_f in pattern.rows_first
            assert local_l in pattern.rows_last

    def test_union_is_closed_under_bit_mix(self):
        # The Cartesian-union property: every row in the set differs from
        # the addressed row only in bit positions where the two LWL
        # fields disagree.
        pattern = self.decoder.neighboring_pattern(0, 0b0101, 192 + 0b0110)
        disagreement = 0b0101 ^ 0b0110
        for row in pattern.rows_first:
            assert (row % 16) & ~(0b0101 | disagreement) == 0
            assert ((row % 16) ^ 0b0101) & ~disagreement == 0

    def test_max_n_produces_last_only(self):
        decoder = HierarchicalRowDecoder(hynix(max_simultaneous_n=4))
        # Hamming distance 4 -> N=16 > cap -> glitch does not engage.
        pattern = decoder.neighboring_pattern(0, 0b0000, 192 + 0b1111)
        assert pattern.kind is ActivationKind.LAST_ONLY

    def test_same_subarray_union(self):
        pattern = self.decoder.same_subarray_pattern(0, 32, 35)
        assert len(pattern.rows_first) == 4
        assert set(pattern.rows_first) == {32, 33, 34, 35}


class TestFactory:
    def test_known_models(self):
        assert isinstance(
            make_decoder(hynix(), SeedTree(0), "calibrated"), CalibratedDecoder
        )
        assert isinstance(
            make_decoder(hynix(), SeedTree(0), "hierarchical"),
            HierarchicalRowDecoder,
        )

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            make_decoder(hynix(), SeedTree(0), "quantum")
