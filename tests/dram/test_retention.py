"""Tests for charge leakage, refresh, and their interplay with Frac."""

import numpy as np
import pytest

from repro.core.frac import is_fractional, store_half_vdd
from repro.errors import CommandSequenceError


def bank_of(host):
    return host.module.chips[0].bank(0)


class TestLeakage:
    def test_short_elapse_preserves_data(self, ideal_host):
        bits = np.random.default_rng(0).integers(
            0, 2, ideal_host.module.row_bits, dtype=np.uint8
        )
        ideal_host.fill_row(0, 5, bits)
        bank_of(ideal_host).elapse(10.0)  # within a retention window
        assert np.array_equal(ideal_host.peek_row(0, 5), bits)

    def test_long_elapse_loses_ones(self, ideal_host):
        ones = np.ones(ideal_host.module.row_bits, dtype=np.uint8)
        ideal_host.fill_row(0, 5, ones)
        bank_of(ideal_host).elapse(10_000.0)  # far beyond the window
        assert np.all(ideal_host.peek_row(0, 5) == 0)

    def test_zeros_are_immune(self, ideal_host):
        zeros = np.zeros(ideal_host.module.row_bits, dtype=np.uint8)
        ideal_host.fill_row(0, 5, zeros)
        bank_of(ideal_host).elapse(10_000.0)
        assert np.all(ideal_host.peek_row(0, 5) == 0)

    def test_heat_accelerates_leakage(self, ideal_host):
        bank = bank_of(ideal_host)
        volts = np.full(ideal_host.module.row_bits, 1.0)
        bank.store_voltages(5, volts)
        bank.elapse(100.0)
        cool = bank.subarrays[0].read_voltages(5)[0]

        bank.store_voltages(5, volts)
        bank.temperature_c = 90.0
        bank.elapse(100.0)
        hot = bank.subarrays[0].read_voltages(5)[0]
        assert hot < cool

    def test_refresh_restores_leaked_charge(self, ideal_host):
        bank = bank_of(ideal_host)
        ones = np.ones(ideal_host.module.row_bits, dtype=np.uint8)
        ideal_host.fill_row(0, 5, ones)
        bank.elapse(500.0)  # partial decay, still above threshold
        assert bank.subarrays[0].read_voltages(5)[0] < 1.0
        bank.refresh(1e9)
        assert np.all(bank.subarrays[0].read_voltages(5) == 1.0)

    def test_elapse_requires_closed_bank(self, ideal_host):
        bank = bank_of(ideal_host)
        bank.activate(0, 0.0)
        with pytest.raises(CommandSequenceError):
            bank.elapse(1.0)

    def test_rejects_negative_time(self, ideal_host):
        with pytest.raises(ValueError):
            bank_of(ideal_host).elapse(-1.0)


class TestFracRetention:
    def test_frac_decays_before_full_rail_cells(self, ideal_host):
        """A VDD/2 cell starts at the sensing threshold: any leakage at
        all pushes it to logic-0, long before real data is endangered.
        This is why the paper's sequences re-Frac per trial."""
        geometry = ideal_host.module.config.geometry
        frac_row = geometry.bank_row(2, 8)
        data_row = geometry.bank_row(2, 40)
        store_half_vdd(ideal_host, 0, frac_row)
        ideal_host.fill_row(
            0, data_row, np.ones(ideal_host.module.row_bits, dtype=np.uint8)
        )
        bank_of(ideal_host).elapse(200.0)
        frac_volts = bank_of(ideal_host).subarrays[2].read_voltages(8)
        assert np.all(~is_fractional(frac_volts, tolerance=0.015))
        # The full-rail data still reads correctly.
        assert np.all(ideal_host.peek_row(0, data_row) == 1)

    def test_refresh_destroys_frac(self, ideal_host):
        geometry = ideal_host.module.config.geometry
        frac_row = geometry.bank_row(2, 8)
        store_half_vdd(ideal_host, 0, frac_row)
        bank_of(ideal_host).refresh(1e9)
        volts = bank_of(ideal_host).subarrays[2].read_voltages(8)
        assert np.all((volts == 0.0) | (volts == 1.0))
