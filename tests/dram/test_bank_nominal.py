"""Tests for the bank engine under nominal (timing-compliant) operation."""

import numpy as np
import pytest

from repro.errors import AddressError, CommandSequenceError
from repro.units import VDD_HALF


def bank_of(host):
    return host.module.chips[0].bank(0)


def random_bits(host, seed=0):
    return np.random.default_rng(seed).integers(
        0, 2, host.module.row_bits, dtype=np.uint8
    )


class TestNominalLifecycle:
    def test_activate_read_precharge(self, ideal_host):
        bank = bank_of(ideal_host)
        bits = random_bits(ideal_host)
        bank.store_bits(10, bits)
        timing = ideal_host.timing
        bank.activate(10, 0.0)
        out = bank.read(10, timing.t_rcd)
        assert np.array_equal(out, bits)
        bank.precharge(timing.t_ras)
        bank.settle(timing.t_ras + timing.t_rp)
        assert not bank.is_open

    def test_activation_restores_cells(self, ideal_host):
        # A nominal activation re-amplifies the (full-rail) cell values.
        bank = bank_of(ideal_host)
        bits = random_bits(ideal_host, 1)
        bank.store_bits(20, bits)
        timing = ideal_host.timing
        bank.activate(20, 0.0)
        bank.precharge(timing.t_ras)
        bank.settle(timing.t_ras + timing.t_rp)
        assert np.array_equal(bank.load_bits(20), bits)

    def test_write_overdrives_open_row(self, ideal_host):
        bank = bank_of(ideal_host)
        timing = ideal_host.timing
        bits = random_bits(ideal_host, 2)
        bank.activate(30, 0.0)
        bank.write(30, bits, timing.t_rcd)
        bank.precharge(timing.t_ras)
        bank.settle(timing.t_ras + timing.t_rp)
        assert np.array_equal(bank.load_bits(30), bits)

    def test_open_rows_reported(self, ideal_host):
        bank = bank_of(ideal_host)
        bank.activate(5, 0.0)
        assert bank.open_rows == {0: (5,)}

    def test_refresh_snaps_to_rails(self, ideal_host):
        bank = bank_of(ideal_host)
        bank.store_voltages(7, np.full(ideal_host.module.row_bits, 0.8))
        bank.refresh(0.0)
        assert np.all(
            bank.subarrays[0].read_voltages(7) == 1.0
        )


class TestCommandErrors:
    def test_read_closed_bank(self, ideal_host):
        with pytest.raises(CommandSequenceError):
            bank_of(ideal_host).read(0, 0.0)

    def test_write_closed_bank(self, ideal_host):
        bank = bank_of(ideal_host)
        with pytest.raises(CommandSequenceError):
            bank.write(0, random_bits(ideal_host), 0.0)

    def test_read_wrong_row(self, ideal_host):
        bank = bank_of(ideal_host)
        bank.activate(0, 0.0)
        with pytest.raises(CommandSequenceError):
            bank.read(1, ideal_host.timing.t_rcd)

    def test_act_on_open_bank_without_pre(self, ideal_host):
        bank = bank_of(ideal_host)
        bank.activate(0, 0.0)
        with pytest.raises(CommandSequenceError):
            bank.activate(1, 100.0)

    def test_refresh_open_bank(self, ideal_host):
        bank = bank_of(ideal_host)
        bank.activate(0, 0.0)
        with pytest.raises(CommandSequenceError):
            bank.refresh(50.0)

    def test_backdoor_requires_closed_bank(self, ideal_host):
        bank = bank_of(ideal_host)
        bank.activate(0, 0.0)
        with pytest.raises(CommandSequenceError):
            bank.store_bits(3, random_bits(ideal_host))

    def test_row_out_of_range(self, ideal_host):
        with pytest.raises(AddressError):
            bank_of(ideal_host).activate(10_000, 0.0)

    def test_time_going_backwards(self, ideal_host):
        bank = bank_of(ideal_host)
        bank.activate(0, 100.0)
        with pytest.raises(CommandSequenceError):
            bank.precharge(50.0)


class TestStripeGeometry:
    def test_served_columns_partition(self, ideal_host):
        bank = bank_of(ideal_host)
        even = bank.served_columns(0)
        odd = bank.served_columns(1)
        both = np.sort(np.concatenate([even, odd]))
        assert np.array_equal(both, np.arange(bank.columns))

    def test_shared_stripe_is_between(self, ideal_host):
        bank = bank_of(ideal_host)
        assert bank.shared_stripe(0, 1) == 1
        assert bank.shared_stripe(2, 1) == 2

    def test_shared_stripe_rejects_non_neighbors(self, ideal_host):
        with pytest.raises(AddressError):
            bank_of(ideal_host).shared_stripe(0, 2)

    def test_stripe_out_of_range(self, ideal_host):
        with pytest.raises(AddressError):
            bank_of(ideal_host).served_columns(99)


class TestFracMechanism:
    def test_interrupted_activation_leaves_half_vdd(self, ideal_host):
        bank = bank_of(ideal_host)
        bits = np.ones(ideal_host.module.row_bits, dtype=np.uint8)
        bank.store_bits(40, bits)
        timing = ideal_host.timing
        bank.activate(40, 0.0)
        bank.precharge(1.5)  # before SENSE_LATENCY_NS
        bank.settle(1.5 + timing.t_rp)
        volts = bank.subarrays[0].read_voltages(40)
        assert np.allclose(volts, VDD_HALF)

    def test_completed_activation_is_not_fraced(self, ideal_host):
        bank = bank_of(ideal_host)
        bits = np.ones(ideal_host.module.row_bits, dtype=np.uint8)
        bank.store_bits(41, bits)
        timing = ideal_host.timing
        bank.activate(41, 0.0)
        bank.precharge(timing.t_ras)
        bank.settle(timing.t_ras + timing.t_rp)
        assert np.all(bank.subarrays[0].read_voltages(41) == 1.0)


class TestHammerBackdoor:
    def test_hammer_flips_neighbors_only(self, real_host):
        bank = bank_of(real_host)
        ones = np.ones(real_host.module.row_bits, dtype=np.uint8)
        for row in range(192):
            bank.store_bits(row, ones)
        victim_rows = bank.subarrays[0].physical_neighbors(50)
        bank.apply_hammer(50, 200_000)
        flipped = [
            row for row in range(192) if not np.all(bank.load_bits(row) == 1)
        ]
        assert set(flipped) == set(victim_rows)

    def test_hammer_zero_activations_is_noop(self, real_host):
        bank = bank_of(real_host)
        ones = np.ones(real_host.module.row_bits, dtype=np.uint8)
        for row in range(192):
            bank.store_bits(row, ones)
        bank.apply_hammer(10, 0)
        assert all(np.all(bank.load_bits(r) == 1) for r in range(192))

    def test_hammer_rejects_negative(self, real_host):
        with pytest.raises(ValueError):
            bank_of(real_host).apply_hammer(0, -1)
