"""Property tests: the bank engine survives arbitrary command streams.

The characterization deliberately abuses timing, so the device model
must stay physical under *any* (protocol-legal) command stream, however
hostile its spacing: cell voltages stay on [0, 1], banks close when told
to, state never leaks across programs.  This is the failure-injection
counterpart of the directed tests.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ChipGeometry, SeedTree, sk_hynix_chip, samsung_chip, micron_chip
from repro.bender import DramBenderHost
from repro.dram.module import Module

GEOMETRY = ChipGeometry(
    banks=1, subarrays_per_bank=2, rows_per_subarray=96, columns=32
)

# One random command: (kind, row, gap_cycles).
commands = st.tuples(
    st.sampled_from(["act", "pre", "wr", "rd", "nop"]),
    st.integers(min_value=0, max_value=191),
    st.integers(min_value=1, max_value=60),
)
streams = st.lists(commands, min_size=1, max_size=25)


def _fresh_host(config) -> DramBenderHost:
    module = Module(config, chip_count=1, seed_tree=SeedTree(5))
    return DramBenderHost(module)


def _run_stream(host: DramBenderHost, stream) -> None:
    """Replay a random stream, tolerating protocol errors only.

    ``WR``/``RD`` to rows that are not open are protocol errors a real
    memory controller would never emit; the model rejects them loudly.
    Everything else — including arbitrarily violated timings — must be
    absorbed.
    """
    from repro.errors import CommandSequenceError

    bank = host.module.chips[0].bank(0)
    time_ns = 0.0
    data = np.zeros(host.module.row_bits, dtype=np.uint8)
    for kind, row, gap in stream:
        try:
            if kind == "act":
                bank.activate(row, time_ns)
            elif kind == "pre":
                bank.precharge(time_ns)
            elif kind == "wr":
                bank.write(row, data, time_ns)
            elif kind == "rd":
                bank.read(row, time_ns)
        except CommandSequenceError:
            pass
        time_ns += gap * host.timing.t_ck
    bank.settle(time_ns + host.timing.t_rc)


@pytest.mark.parametrize(
    "config_factory", [sk_hynix_chip, samsung_chip, micron_chip]
)
class TestRandomStreams:
    @given(stream=streams)
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_voltages_stay_physical(self, config_factory, stream):
        host = _fresh_host(config_factory().with_geometry(GEOMETRY))
        _run_stream(host, stream)
        for subarray in host.module.chips[0].bank(0).subarrays:
            assert np.all(subarray.voltages >= 0.0)
            assert np.all(subarray.voltages <= 1.0)

    @given(stream=streams)
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_bank_closes_after_settle(self, config_factory, stream):
        host = _fresh_host(config_factory().with_geometry(GEOMETRY))
        _run_stream(host, stream)
        bank = host.module.chips[0].bank(0)
        # A trailing PRE + settle must always return to precharged.
        now = 1e7
        bank.precharge(now)
        bank.settle(now + host.timing.t_rc)
        assert not bank.is_open

    @given(stream=streams)
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_nominal_operation_recovers_afterwards(self, config_factory, stream):
        # Whatever the hostile stream did, a subsequent fully compliant
        # write/read round trip must work.
        host = _fresh_host(config_factory().with_geometry(GEOMETRY))
        _run_stream(host, stream)
        bank = host.module.chips[0].bank(0)
        now = 1e7
        bank.precharge(now)
        bank.settle(now + host.timing.t_rc)
        bits = np.random.default_rng(0).integers(
            0, 2, host.module.row_bits, dtype=np.uint8
        )
        host.write_row(0, 7, bits)
        assert np.array_equal(host.read_row(0, 7), bits)
