"""Tests for the analog charge-sharing and sensing math."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram.analog import (
    and_reference_voltage,
    charge_share,
    coupling_disturbance,
    ideal_charge_share,
    or_reference_voltage,
    sense_differential,
)
from repro.units import VDD, VDD_HALF

voltages = st.floats(min_value=0.0, max_value=1.0)


class TestChargeShare:
    def test_no_cells_stays_precharged(self):
        result = charge_share(np.empty((0, 4)), 24.0, 120.0)
        assert np.allclose(result, VDD_HALF)

    def test_single_one_cell_raises_bitline(self):
        cells = np.array([[VDD, 0.0]])
        result = charge_share(cells, 24.0, 120.0)
        assert result[0] > VDD_HALF > result[1]

    def test_exact_value(self):
        # (120 * 0.5 + 24 * 1.0) / (120 + 24) = 84 / 144
        cells = np.array([[VDD]])
        result = charge_share(cells, 24.0, 120.0)
        assert result[0] == pytest.approx(84.0 / 144.0)

    @given(
        st.lists(
            st.lists(voltages, min_size=3, max_size=3), min_size=1, max_size=8
        )
    )
    def test_result_bounded_by_cell_range(self, rows):
        cells = np.array(rows)
        result = charge_share(cells, 24.0, 120.0)
        lo = min(cells.min(), VDD_HALF)
        hi = max(cells.max(), VDD_HALF)
        assert np.all(result >= lo - 1e-12)
        assert np.all(result <= hi + 1e-12)

    @given(st.lists(voltages, min_size=1, max_size=16))
    def test_zero_bitline_cap_limit_is_mean(self, values):
        # As C_b -> 0 the paper's footnote-10 model (plain mean) emerges.
        cells = np.array(values)[:, np.newaxis]
        result = charge_share(cells, 24.0, 1e-9)
        assert result[0] == pytest.approx(ideal_charge_share(values), abs=1e-6)

    @given(st.lists(voltages, min_size=2, max_size=16))
    def test_monotone_in_cell_voltage(self, values):
        cells = np.array(values)[:, np.newaxis]
        base = charge_share(cells, 24.0, 120.0)[0]
        bumped_cells = cells.copy()
        bumped_cells[0] = min(1.0, cells[0] + 0.1)
        bumped = charge_share(bumped_cells, 24.0, 120.0)[0]
        assert bumped >= base - 1e-12

    def test_efficiency_scales_contribution(self):
        cells = np.array([[VDD]])
        full = charge_share(cells, 24.0, 120.0)[0]
        half = charge_share(cells, 24.0, 120.0, efficiencies=np.array([0.5]))[0]
        assert VDD_HALF < half < full

    def test_rejects_wrong_dims(self):
        with pytest.raises(ValueError):
            charge_share(np.zeros(4), 24.0, 120.0)

    def test_rejects_bad_capacitance(self):
        with pytest.raises(ValueError):
            charge_share(np.zeros((1, 4)), 0.0, 120.0)


class TestIdealChargeShare:
    def test_empty_is_precharge(self):
        assert ideal_charge_share([]) == VDD_HALF

    @given(st.lists(voltages, min_size=1, max_size=10))
    def test_is_mean(self, values):
        assert ideal_charge_share(values) == pytest.approx(np.mean(values))


class TestReferenceVoltages:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
    def test_and_reference_separates_outputs(self, n):
        # V_AND must sit between the highest logic-0 compute voltage and
        # VDD (§6.1.2).
        v_and = and_reference_voltage(n)
        highest_zero = (n - 1) * VDD / n
        assert highest_zero < v_and < VDD

    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
    def test_or_reference_separates_outputs(self, n):
        v_or = or_reference_voltage(n)
        lowest_one = VDD / n
        assert 0.0 < v_or < lowest_one

    def test_known_values(self):
        assert and_reference_voltage(2) == pytest.approx(0.75)
        assert or_reference_voltage(2) == pytest.approx(0.25)

    def test_rejects_zero_inputs(self):
        with pytest.raises(ValueError):
            and_reference_voltage(0)
        with pytest.raises(ValueError):
            or_reference_voltage(0)


class TestCouplingDisturbance:
    def test_uniform_swing_is_quiet(self):
        assert np.all(coupling_disturbance(np.full(8, 0.3)) == 0.0)

    def test_alternating_swing_is_maximal(self):
        d = np.array([0.3, -0.3] * 4)
        assert np.all(coupling_disturbance(d) == pytest.approx(0.6))

    def test_single_flip_disturbs_neighbors(self):
        d = np.array([0.3, 0.3, -0.3, 0.3, 0.3])
        disturbance = coupling_disturbance(d)
        assert disturbance[2] == pytest.approx(0.6)
        assert disturbance[1] == pytest.approx(0.3)
        assert disturbance[3] == pytest.approx(0.3)
        assert disturbance[0] == 0.0

    def test_short_arrays(self):
        assert coupling_disturbance(np.array([0.5])).tolist() == [0.0]

    def test_scales_with_voltage_spread(self):
        small = coupling_disturbance(np.array([0.50, 0.52, 0.50, 0.52]))
        large = coupling_disturbance(np.array([0.2, 0.8, 0.2, 0.8]))
        assert np.all(large > small)

    @given(st.lists(st.floats(min_value=-1, max_value=1), min_size=2, max_size=32))
    def test_bounded(self, values):
        disturbance = coupling_disturbance(np.array(values))
        assert np.all(disturbance >= 0.0)
        assert np.all(disturbance <= 2.0)


class TestSenseDifferential:
    def _sense(self, pos, neg, **kwargs):
        rng = np.random.default_rng(0)
        offsets = np.zeros(len(pos))
        return sense_differential(
            np.array(pos, dtype=float),
            np.array(neg, dtype=float),
            offsets,
            kwargs.pop("noise_sigma", 0.0),
            rng,
            **kwargs,
        )

    def test_noise_free_is_exact_comparison(self):
        wins = self._sense([0.6, 0.4, 0.5], [0.5, 0.5, 0.6])
        assert wins.tolist() == [True, False, False]

    def test_margin_shift_biases(self):
        assert self._sense([0.5], [0.5], margin_shift=0.01).tolist() == [True]
        assert self._sense([0.5], [0.5], margin_shift=-0.01).tolist() == [False]

    def test_offsets_applied(self):
        rng = np.random.default_rng(0)
        wins = sense_differential(
            np.array([0.50]), np.array([0.51]), np.array([0.02]), 0.0, rng
        )
        assert wins.tolist() == [True]

    def test_large_noise_flips_small_margins_sometimes(self):
        rng = np.random.default_rng(0)
        pos = np.full(4000, 0.51)
        neg = np.full(4000, 0.50)
        wins = sense_differential(pos, neg, np.zeros(4000), 0.05, rng)
        error_rate = 1.0 - wins.mean()
        assert 0.3 < error_rate < 0.5  # Phi(-0.2) ~ 0.42

    def test_common_mode_gain_increases_high_cm_errors(self):
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        pos, neg = np.full(4000, 0.93), np.full(4000, 0.90)
        base = sense_differential(pos, neg, np.zeros(4000), 0.02, rng1)
        noisy = sense_differential(
            pos,
            neg,
            np.zeros(4000),
            0.02,
            rng2,
            common_mode_gain=10.0,
            common_mode_threshold=0.45,
        )
        assert (1 - noisy.mean()) > (1 - base.mean())

    def test_sigma_cap_limits_inflation(self):
        rng1, rng2 = np.random.default_rng(2), np.random.default_rng(2)
        pos, neg = np.full(4000, 0.95), np.full(4000, 0.80)
        uncapped = sense_differential(
            pos, neg, np.zeros(4000), 0.02, rng1,
            common_mode_gain=50.0, common_mode_threshold=0.0,
        )
        capped = sense_differential(
            pos, neg, np.zeros(4000), 0.02, rng2,
            common_mode_gain=50.0, common_mode_threshold=0.0,
            sigma_cap_factor=2.0,
        )
        assert capped.mean() > uncapped.mean()

    def test_high_cm_bias_favors_positive_terminal(self):
        wins = self._sense(
            [0.90], [0.905],
            common_mode_offset_gain=0.2,
            common_mode_threshold=0.45,
        )
        assert wins.tolist() == [True]

    def test_low_cm_bias_favors_negative_terminal(self):
        wins = self._sense(
            [0.105], [0.10],
            low_common_mode_offset_gain=0.2,
            common_mode_threshold=0.45,
        )
        assert wins.tolist() == [False]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            self._sense([0.5, 0.5], [0.5])
