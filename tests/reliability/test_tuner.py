"""Tests for the reliability auto-tuner.

The slow pieces (surrogate fits) run at SMOKE scale and are shared via
session fixtures; the acceptance-criterion check — every tuned cell
meets its bound when replayed against an *independently fitted* analog
reference — is exercised end to end.
"""

import pytest

from repro.characterization.runner import SMOKE
from repro.errors import ReliabilityError, ReliabilityUnsatisfiableError
from repro.reliability import (
    DEFAULT_BOUND_MARGIN,
    DEFAULT_ERROR_BOUND,
    SMOKE_TUNE_GRID,
    MitigationScheme,
    PolicyTable,
    TuneGrid,
    candidate_schemes,
    select_scheme,
    static_infeasibility,
    tune,
    validate_policy,
)
from repro.substrate.fit import SMOKE_GRID, fit_surrogate
from repro.substrate.surrogate import SurrogateBackend


@pytest.fixture(scope="session")
def tuning_backend():
    return SurrogateBackend(fit_surrogate(SMOKE, 0, grid=SMOKE_GRID))


@pytest.fixture(scope="session")
def reference_backend():
    # Independent fit seed: analog data the tuner never saw.
    return SurrogateBackend(fit_surrogate(SMOKE, 1, grid=SMOKE_GRID))


@pytest.fixture(scope="session")
def policy(tuning_backend):
    return tune(tuning_backend, grid=SMOKE_TUNE_GRID)


class TestStaticGate:
    @pytest.mark.parametrize(
        "operation,fan_in",
        [("and", 8), ("and", 16), ("nand", 16), ("or", 16), ("nor", 16)],
    )
    def test_observation_14_cells_infeasible(self, operation, fan_in):
        reason = static_infeasibility(operation, fan_in)
        assert reason is not None
        assert "Observation 14" in reason

    @pytest.mark.parametrize(
        "operation,fan_in",
        [("and", 2), ("and", 4), ("or", 8), ("not", 16), ("not", 32)],
    )
    def test_feasible_cells_pass(self, operation, fan_in):
        assert static_infeasibility(operation, fan_in) is None

    def test_select_scheme_raises_typed_for_16_input_and(self):
        with pytest.raises(ReliabilityUnsatisfiableError) as excinfo:
            select_scheme("and", 16, 0.99, DEFAULT_ERROR_BOUND, TuneGrid())
        assert excinfo.value.operation == "and"
        assert excinfo.value.fan_in == 16
        # Statically infeasible: no candidate was even evaluated.
        assert excinfo.value.best_error is None


class TestCandidates:
    def test_retry_excluded_for_not(self):
        grid = TuneGrid(max_votes=3, max_attempts=3)
        assert all(
            scheme.max_attempts == 1
            for scheme in candidate_schemes("not", 4, grid)
        )

    def test_row_copies_capped_by_terminal(self):
        grid = TuneGrid(max_votes=1, max_attempts=1)
        copies = {
            scheme.row_copies for scheme in candidate_schemes("and", 4, grid)
        }
        assert copies == {1, 3}

    def test_uncoded_always_candidate(self):
        grid = TuneGrid(max_votes=1, max_attempts=1)
        assert MitigationScheme() in candidate_schemes("or", 2, grid)


class TestSelection:
    def test_high_probability_needs_no_code(self):
        scheme, error, cost = select_scheme(
            "and", 2, 0.999999, DEFAULT_ERROR_BOUND, TuneGrid()
        )
        assert scheme.is_uncoded
        assert cost == 1.0

    def test_selection_meets_engineering_target(self):
        scheme, error, cost = select_scheme(
            "and", 2, 0.95, DEFAULT_ERROR_BOUND, TuneGrid()
        )
        assert error <= DEFAULT_ERROR_BOUND * DEFAULT_BOUND_MARGIN
        assert not scheme.is_uncoded

    def test_cheapest_wins(self):
        # A cheaper scheme meeting the target must never lose to a
        # stronger, costlier one.
        scheme, _error, cost = select_scheme(
            "and", 2, 0.95, DEFAULT_ERROR_BOUND, TuneGrid()
        )
        for other in candidate_schemes("and", 2, TuneGrid()):
            predicted = float(other.predicted_error(0.95))
            if predicted <= DEFAULT_ERROR_BOUND * DEFAULT_BOUND_MARGIN:
                assert float(other.expected_cost(0.95)) >= cost - 1e-12

    def test_hopeless_probability_unsatisfiable_with_best_error(self):
        with pytest.raises(ReliabilityUnsatisfiableError) as excinfo:
            select_scheme("or", 2, 0.4, DEFAULT_ERROR_BOUND, TuneGrid())
        assert excinfo.value.best_error is not None
        assert excinfo.value.best_error > DEFAULT_ERROR_BOUND


class TestTune:
    def test_every_tuned_cell_meets_engineering_target(self, policy):
        assert len(policy) > 0
        for _key, cell in policy:
            assert cell.predicted_error <= (
                cell.error_bound * DEFAULT_BOUND_MARGIN
            )

    def test_observation_14_cells_recorded_unsatisfiable(self, policy):
        unsat = dict(policy.unsatisfiable_cells())
        assert ("and", 16, "any", 50.0) in unsat
        assert "Observation 14" in unsat[("and", 16, "any", 50.0)]
        with pytest.raises(ReliabilityUnsatisfiableError):
            policy.scheme_for("and", 16)

    def test_meta_records_grid_and_margins(self, policy):
        assert policy.meta["error_bound"] == DEFAULT_ERROR_BOUND
        assert policy.meta["bound_margin"] == DEFAULT_BOUND_MARGIN
        assert policy.meta["backend"] == "surrogate"

    def test_backend_without_estimates_rejected(self, tmp_path):
        from repro.substrate.analog import AnalogBackend

        with pytest.raises(ReliabilityError, match="no probability"):
            tune(AnalogBackend(), grid=SMOKE_TUNE_GRID)

    def test_round_trips_through_disk(self, policy, tmp_path):
        path = str(tmp_path / "policy.json")
        policy.save(path)
        assert PolicyTable.load(path).to_payload() == policy.to_payload()


class TestAnalogReplay:
    def test_tuned_cells_meet_bound_on_independent_reference(
        self, policy, reference_backend
    ):
        # The ISSUE acceptance criterion: every tuned cell still meets
        # its full bound when replayed against analog-fitted data from
        # a seed the tuner never observed.
        report = validate_policy(policy, reference_backend)
        assert report.checked == len(policy)
        assert report.skipped == 0
        assert report.ok, f"violations: {report.violations}"
