"""Tests for the mitigation-scheme algebra (closed-form error models)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.reliability import (
    UNCODED,
    MitigationScheme,
    detect_retry_error,
    expected_attempts,
    majority_error,
)


class TestMajorityError:
    def test_single_copy_is_identity(self):
        assert majority_error(0.25, 1) == 0.25

    def test_three_copy_binomial_tail(self):
        # P(>=2 of 3 wrong) = 3 e^2 (1-e) + e^3
        e = 0.1
        expected = 3 * e**2 * (1 - e) + e**3
        assert majority_error(e, 3) == pytest.approx(expected)

    def test_five_copy_matches_direct_sum(self):
        e = 0.2
        expected = sum(
            math.comb(5, k) * e**k * (1 - e) ** (5 - k) for k in (3, 4, 5)
        )
        assert majority_error(e, 5) == pytest.approx(expected)

    def test_vectorized_over_cell_arrays(self):
        rates = np.array([0.0, 0.05, 0.3, 0.5])
        out = majority_error(rates, 3)
        assert isinstance(out, np.ndarray)
        for scalar, vector in zip(rates, out):
            assert majority_error(float(scalar), 3) == pytest.approx(vector)

    def test_voting_helps_below_half_hurts_above(self):
        assert majority_error(0.1, 3) < 0.1
        assert majority_error(0.7, 3) > 0.7

    def test_even_copies_rejected(self):
        with pytest.raises(ConfigurationError):
            majority_error(0.1, 2)
        with pytest.raises(ConfigurationError):
            majority_error(0.1, 0)


class TestDetectRetry:
    def test_single_attempt_is_identity(self):
        residual, detect = detect_retry_error(0.2, 1)
        assert residual == 0.2
        assert detect == 0.0

    def test_retry_reduces_error(self):
        residual, detect = detect_retry_error(0.2, 3)
        assert residual < 0.2
        # Detection rate = 2 e (1 - e).
        assert detect == pytest.approx(2 * 0.2 * 0.8)

    def test_residual_floor_is_double_flip(self):
        # With an infinite budget the residual converges to the
        # undetectable double-flip conditional e^2 / ((1-e)^2 + e^2).
        e = 0.1
        residual, _ = detect_retry_error(e, 50)
        assert residual == pytest.approx(e**2 / ((1 - e) ** 2 + e**2))

    def test_zero_error_stays_zero(self):
        residual, detect = detect_retry_error(0.0, 4)
        assert residual == 0.0
        assert detect == 0.0

    def test_invalid_attempts_rejected(self):
        with pytest.raises(ConfigurationError):
            detect_retry_error(0.1, 0)


class TestExpectedAttempts:
    def test_no_detection_is_one(self):
        assert expected_attempts(0.0, 5) == 1.0

    def test_partial_geometric_sum(self):
        assert expected_attempts(0.5, 3) == pytest.approx(1 + 0.5 + 0.25)

    def test_invalid_attempts_rejected(self):
        with pytest.raises(ConfigurationError):
            expected_attempts(0.5, 0)


class TestSchemeValidation:
    def test_uncoded_identity(self):
        assert UNCODED.is_uncoded
        assert MitigationScheme().predicted_error(0.9) == pytest.approx(0.1)
        assert MitigationScheme().expected_cost(0.9) == 1.0
        assert MitigationScheme().reads_per_execution() == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"votes": 2},
            {"votes": 0},
            {"row_copies": 4},
            {"row_copies": -1},
            {"max_attempts": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            MitigationScheme(**kwargs)


class TestLabels:
    @pytest.mark.parametrize(
        "scheme,label",
        [
            (MitigationScheme(), "uncoded"),
            (MitigationScheme(votes=3), "vote3"),
            (MitigationScheme(row_copies=5), "rows5"),
            (MitigationScheme(max_attempts=2), "retry2"),
            (
                MitigationScheme(votes=3, row_copies=3, max_attempts=2),
                "vote3+rows3+retry2",
            ),
        ],
    )
    def test_label_round_trip(self, scheme, label):
        assert scheme.label == label
        assert MitigationScheme.from_label(label) == scheme

    def test_malformed_label_rejected(self):
        with pytest.raises(ConfigurationError):
            MitigationScheme.from_label("vote3+bogus7")


class TestApplicability:
    def test_retry_needs_complement_terminal(self):
        retry = MitigationScheme(max_attempts=2)
        for operation in ("and", "or", "nand", "nor"):
            assert retry.applicable_to(operation)
        assert not retry.applicable_to("not")

    def test_votes_and_rows_apply_everywhere(self):
        scheme = MitigationScheme(votes=3, row_copies=3)
        assert scheme.applicable_to("not")

    def test_capped_to_rows_keeps_odd(self):
        scheme = MitigationScheme(row_copies=7)
        assert scheme.capped_to_rows(4).row_copies == 3
        assert scheme.capped_to_rows(1).row_copies == 1
        assert scheme.capped_to_rows(16).row_copies == 7


class TestComposition:
    def test_each_lever_reduces_error(self):
        p = 0.9
        base = float(UNCODED.predicted_error(p))
        assert float(MitigationScheme(votes=3).predicted_error(p)) < base
        assert float(MitigationScheme(row_copies=3).predicted_error(p)) < base
        assert float(MitigationScheme(max_attempts=2).predicted_error(p)) < base

    def test_composed_beats_single_lever(self):
        p = 0.9
        composed = float(
            MitigationScheme(votes=3, max_attempts=3).predicted_error(p)
        )
        assert composed < float(MitigationScheme(votes=3).predicted_error(p))
        assert composed < float(
            MitigationScheme(max_attempts=3).predicted_error(p)
        )

    def test_cost_counts_votes_and_expected_retries(self):
        p = 0.9
        assert MitigationScheme(votes=5).expected_cost(p) == 5.0
        retry_cost = float(MitigationScheme(max_attempts=3).expected_cost(p))
        assert 1.0 < retry_cost < 3.0
        combined = float(
            MitigationScheme(votes=5, max_attempts=3).expected_cost(p)
        )
        assert combined == pytest.approx(5 * retry_cost)

    def test_reads_double_with_retry(self):
        assert MitigationScheme(row_copies=3).reads_per_execution() == 3
        assert (
            MitigationScheme(row_copies=3, max_attempts=2).reads_per_execution()
            == 6
        )

    def test_predicted_error_vectorizes(self):
        scheme = MitigationScheme(votes=3, max_attempts=2)
        rates = np.array([0.99, 0.9, 0.7])
        out = np.asarray(scheme.predicted_error(rates))
        assert out.shape == rates.shape
        assert np.all(np.diff(out) > 0)  # lower p -> higher residual
