"""Tests for the persisted policy table."""

import json

import pytest

from repro.errors import ReliabilityError, ReliabilityUnsatisfiableError
from repro.reliability import MitigationScheme, PolicyEntry, PolicyTable


def entry(scheme="vote3", bound=1e-3, probability=0.95):
    return PolicyEntry(
        scheme=MitigationScheme.from_label(scheme),
        probability=probability,
        predicted_error=1e-4,
        expected_cost=3.0,
        error_bound=bound,
    )


@pytest.fixture()
def table():
    t = PolicyTable(meta={"origin": "test"})
    t.set(("and", 2, "any", 50.0), entry("vote3"))
    t.set(("and", 2, "any", 90.0), entry("vote5+retry2"))
    t.set(("and", 2, "close-close", 50.0), entry("uncoded"))
    t.set(("not", 2, "any", 50.0), entry("rows3"))
    t.set_unsatisfiable(
        ("and", 16, "any", 50.0), "statically infeasible (Observation 14)"
    )
    return t


class TestLookup:
    def test_exact_cell(self, table):
        assert table.scheme_for("and", 2).scheme.label == "vote3"

    def test_nearest_temperature(self, table):
        assert (
            table.scheme_for("and", 2, temperature_c=85.0).scheme.label
            == "vote5+retry2"
        )
        assert (
            table.scheme_for("and", 2, temperature_c=55.0).scheme.label
            == "vote3"
        )

    def test_distance_exact_match_wins(self, table):
        found = table.scheme_for("and", 2, distance="close-close")
        assert found.scheme.label == "uncoded"

    def test_distance_falls_back_to_any(self, table):
        found = table.scheme_for("and", 2, distance="far-far")
        assert found.scheme.label == "vote3"

    def test_unsatisfiable_cell_raises_typed(self, table):
        with pytest.raises(ReliabilityUnsatisfiableError) as excinfo:
            table.scheme_for("and", 16)
        assert excinfo.value.operation == "and"
        assert excinfo.value.fan_in == 16
        assert "Observation 14" in str(excinfo.value)

    def test_untuned_cell_raises(self, table):
        with pytest.raises(ReliabilityError, match="no tuned policy"):
            table.scheme_for("or", 4)


class TestPersistence:
    def test_round_trip(self, table, tmp_path):
        path = str(tmp_path / "policy.json")
        table.save(path)
        loaded = PolicyTable.load(path)
        assert loaded.to_payload() == table.to_payload()
        assert loaded.meta["origin"] == "test"
        assert len(loaded) == len(table)
        assert loaded.unsatisfiable_count == 1
        assert loaded.scheme_for("and", 2).scheme.label == "vote3"

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 99, "cells": {}}))
        with pytest.raises(ReliabilityError, match="format"):
            PolicyTable.load(str(path))

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ReliabilityError, match="JSON"):
            PolicyTable.load(str(path))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ReliabilityError, match="cannot read"):
            PolicyTable.load(str(tmp_path / "absent.json"))

    def test_malformed_key_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        payload = {
            "format": PolicyTable.FORMAT,
            "cells": {"and|2": entry().to_dict()},
        }
        path.write_text(json.dumps(payload))
        with pytest.raises(ReliabilityError, match="malformed policy key"):
            PolicyTable.load(str(path))


class TestDisplay:
    def test_summary_lines_cover_all_cells(self, table):
        lines = table.summary_lines()
        assert len(lines) == len(table) + table.unsatisfiable_count
        assert any("UNSATISFIABLE" in line for line in lines)
        assert any("vote3" in line for line in lines)
