"""Smoke + trend tests for every table/figure experiment at SMOKE scale.

These verify each experiment's structure and the paper's key *orderings*
(which must hold even at small scale); the quantitative comparison
against paper anchors lives in EXPERIMENTS.md at the default scale.
"""

import pytest

from repro.characterization import REGISTRY, SMOKE, run_experiment
from repro.characterization.experiments import TITLES

FAST = SMOKE.with_trials(30)


@pytest.fixture(scope="module")
def results():
    """Run every experiment once at smoke scale and share the outcomes."""
    return {
        experiment_id: run_experiment(experiment_id, FAST, seed=3)
        for experiment_id in REGISTRY
    }


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        expected = {
            "table1", "capability", "fig5", "fig7", "fig8", "fig9",
            "fig10", "fig11", "fig12", "fig15", "fig16", "fig17", "fig18",
            "fig19", "fig20", "fig21",
            # Not a paper figure: the reliability/throughput frontier
            # derived from the characterization (repro.reliability).
            "frontier",
        }
        assert set(REGISTRY) == expected
        assert set(TITLES) == expected

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99", FAST)


class TestStructure:
    def test_ids_match(self, results):
        for experiment_id, result in results.items():
            assert result.experiment_id == experiment_id
            assert result.title == TITLES[experiment_id]

    def test_every_experiment_produces_output(self, results):
        for experiment_id, result in results.items():
            assert result.groups or result.extras, experiment_id

    def test_rates_are_valid_fractions(self, results):
        for experiment_id, result in results.items():
            if experiment_id in ("table1",):
                continue
            for label, stats in result.groups.items():
                assert 0.0 <= stats.minimum <= stats.maximum <= 1.0, (
                    experiment_id, label,
                )


class TestPaperTrends:
    def test_table1_population(self, results):
        extras = results["table1"].extras
        assert extras["analyzed_chips"] == 256
        assert extras["tested_modules"] == 28

    def test_fig5_high_n_dominates(self, results):
        means = results["fig5"].group_means()
        # Observation 1/2: 8:8 and 16:16 are the dominant types.
        assert means["8:8"] > means["2:2"] > means["1:1"]

    def test_fig7_one_destination_beats_thirty_two(self, results):
        means = results["fig7"].group_means()
        assert means["1 dst"] > 0.9
        assert means["32 dst"] < 0.35
        assert means["1 dst"] > means["16 dst"] > means["32 dst"]

    def test_fig7_some_perfect_cells(self, results):
        # Observation 3.  At smoke scale only a few dozen cells exist per
        # group, so the rare always-strong population (2% of columns) is
        # only guaranteed statistically for the lower destination counts.
        for label in ("1 dst", "2 dst", "4 dst", "8 dst"):
            assert results["fig7"].groups[label].maximum > 0.95, label

    def test_fig8_n2n_beats_nn_at_16_destinations(self, results):
        means = results["fig8"].group_means()
        # Observation 5's flagship comparison.
        if "8:16" in means and "16:16" in means:
            assert means["8:16"] > means["16:16"]

    def test_fig9_far_close_is_worst(self, results):
        heatmap = results["fig9"].extras["heatmap"]
        far_close = heatmap.get((2, 0))
        if far_close is None:
            pytest.skip("Far-Close cell not populated at smoke scale")
        assert far_close == min(heatmap.values())

    def test_fig10_temperature_effect_small(self, results):
        assert results["fig10"].extras["max_mean_variation"] < 0.08

    def test_fig11_dip_at_2400(self, results):
        means = results["fig11"].group_means()
        if "4 dst @2400MT/s" in means:
            assert means["4 dst @2400MT/s"] < means["4 dst @2133MT/s"]
            assert means["4 dst @2400MT/s"] < means["4 dst @2666MT/s"]

    def test_fig12_samsung_a_beats_d(self, results):
        means = results["fig12"].group_means()
        assert means["Samsung 8Gb A-die"] > means["Samsung 8Gb D-die"]

    def test_fig15_and_tracks_nand(self, results):
        means = results["fig15"].group_means()
        for n in (2, 4, 8, 16):
            if f"AND n={n}" in means and f"NAND n={n}" in means:
                assert means[f"AND n={n}"] == pytest.approx(
                    means[f"NAND n={n}"], abs=0.06
                )

    def test_fig15_or_beats_and_at_two_inputs(self, results):
        means = results["fig15"].group_means()
        assert means["OR n=2"] > means["AND n=2"]

    def test_fig16_and_worst_at_high_ones(self, results):
        series = results["fig16"].extras["series"]
        and4 = series["AND4"]
        assert and4[0] > and4[3]  # 0 logic-1s much easier than 3 of 4

    def test_fig16_or_worst_at_low_ones(self, results):
        series = results["fig16"].extras["series"]
        or4 = series["OR4"]
        assert or4[4] > or4[1]

    def test_fig17_and_varies_more_than_or(self, results):
        extras = results["fig17"].extras
        if "variation_and" in extras and "variation_or" in extras:
            assert extras["variation_and"] > extras["variation_or"]

    def test_fig18_random_not_better_than_all01(self, results):
        deltas = results["fig18"].extras["all01_minus_random"]
        assert all(delta > -0.02 for delta in deltas.values())

    def test_fig19_temperature_effect_small(self, results):
        variations = results["fig19"].extras["max_mean_variation"]
        assert all(v < 0.10 for v in variations.values())

    def test_fig20_ops_dip_at_2400(self, results):
        means = results["fig20"].group_means()
        if "NAND n=4 @2400MT/s" in means:
            assert means["NAND n=4 @2400MT/s"] < means["NAND n=4 @2133MT/s"]

    def test_capability_matrix_matches_section7(self, results):
        matrix = results["capability"].extras["matrix"]
        for name, row in matrix.items():
            if name.startswith("micron"):
                assert not row["rowclone"] and row["max_not_dst"] == 0
            elif name.startswith("samsung"):
                assert row["rowclone"]
                assert row["max_not_dst"] == 1
                assert row["max_op_inputs"] == 0
            else:
                assert row["rowclone"]
                assert row["max_not_dst"] >= 1
                assert row["max_op_inputs"] >= 8

    def test_fig21_no_16_input_for_8gb_m(self, results):
        # Footnote 12: the 8Gb M-die module stops at 8-input operations.
        assert not any(
            "n=16 8Gb M" in label for label in results["fig21"].groups
        )


class TestFrontier:
    """The reliability/throughput frontier (repro.reliability)."""

    def test_structure(self, results):
        result = results["frontier"]
        frontier = result.extras["frontier"]
        assert frontier, "frontier must carry (cost, error) points"
        for point in frontier:
            assert point["cost"] >= 1.0
            assert 0.0 <= point["mean_error"] <= 1.0
            assert 0.0 <= point["p95_error"] <= 1.0
        assert result.extras["error_bound"] == 1e-3
        assert "cost(x)" in result.extras["table"]

    def test_uncoded_anchors_every_operation(self, results):
        frontier = results["frontier"].extras["frontier"]
        ops = {point["op"] for point in frontier}
        for op in ops:
            anchors = [
                p for p in frontier
                if p["op"] == op and p["scheme"] == "uncoded"
            ]
            assert len(anchors) == 1
            assert anchors[0]["cost"] == 1.0

    def test_stronger_schemes_cost_more_and_err_less(self, results):
        frontier = results["frontier"].extras["frontier"]
        for op in {point["op"] for point in frontier}:
            points = {p["scheme"]: p for p in frontier if p["op"] == op}
            uncoded = points["uncoded"]
            strong = points.get("vote9+retry3") or points.get("vote9+rows3+retry4")
            if strong is None:
                continue
            assert strong["cost"] > uncoded["cost"]
            assert strong["mean_error"] < uncoded["mean_error"]

    def test_observation_14_noted(self, results):
        notes = "\n".join(results["frontier"].notes)
        assert "AND n=16 has no frontier point" in notes
        assert "Observation 14" in notes
