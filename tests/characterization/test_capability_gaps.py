"""Edge-case tests for the per-manufacturer capability gaps (§3.2).

The paper's figures have structural holes: Micron chips support no
simultaneous-activation operation at all, Samsung chips only the 1:1
sequential NOT, and the SK Hynix 8Gb M-die caps simultaneous activation
at 8 rows per subarray with no N:2N patterns.  The measurement finders
must return ``None`` for exactly these combinations — silently emitting
a measurement there would fabricate data the hardware cannot produce.
"""

import pytest

from repro.characterization.runner import (
    SMOKE,
    find_logic_measurement,
    find_not_measurement,
    iter_targets,
    region_predicate,
)
from repro.dram.config import ActivationSupport, Manufacturer
from repro.dram.decoder import ActivationKind


def targets_by_spec(**kwargs):
    mapping = {}
    for target in iter_targets(SMOKE, seed=0, **kwargs):
        mapping.setdefault(target.spec.name, target)
    return mapping


@pytest.fixture(scope="module")
def hynix_targets():
    return targets_by_spec(manufacturers=[Manufacturer.SK_HYNIX])


@pytest.fixture(scope="module")
def samsung_target():
    return next(iter(iter_targets(SMOKE, seed=0, manufacturers=[Manufacturer.SAMSUNG])))


@pytest.fixture(scope="module")
def micron_targets():
    return [
        t
        for t in iter_targets(SMOKE, seed=0, include_micron=True)
        if t.manufacturer is Manufacturer.MICRON
    ]


class TestSamsungGaps:
    def test_single_destination_works(self, samsung_target):
        measurement = find_not_measurement(samsung_target, 1)
        assert measurement is not None
        assert measurement.n_destination_rows == 1

    @pytest.mark.parametrize("n_destination", [2, 4, 8, 16, 32])
    def test_multi_destination_is_a_gap(self, samsung_target, n_destination):
        assert find_not_measurement(samsung_target, n_destination) is None

    @pytest.mark.parametrize("op", ["and", "or", "nand", "nor"])
    def test_no_logic_at_all(self, samsung_target, op):
        for n_inputs in (2, 4, 8, 16):
            assert find_logic_measurement(samsung_target, op, n_inputs) is None


class TestMicronGaps:
    def test_micron_targets_exist_when_requested(self, micron_targets):
        assert micron_targets
        assert all(
            t.spec.chip.activation_support is ActivationSupport.NONE
            for t in micron_targets
        )

    @pytest.mark.parametrize("n_destination", [1, 2, 4, 8, 16, 32])
    def test_not_always_none(self, micron_targets, n_destination):
        for target in micron_targets:
            assert find_not_measurement(target, n_destination) is None

    def test_logic_always_none(self, micron_targets):
        for target in micron_targets:
            for n_inputs in (2, 4, 8, 16):
                assert find_logic_measurement(target, "and", n_inputs) is None


class TestN2NGaps:
    def test_explicit_n2n_kind_rejected_without_support(self, hynix_targets):
        checked = 0
        for name, target in hynix_targets.items():
            if target.spec.chip.supports_n_to_2n:
                continue
            checked += 1
            measurement = find_not_measurement(
                target, 4, kind=ActivationKind.N_TO_2N
            )
            assert measurement is None, name
        assert checked  # Table 1 has N:N-only dies.

    def test_explicit_n2n_kind_works_with_support(self, hynix_targets):
        target = hynix_targets["hynix-4gb-m-x8-2666"]
        assert target.spec.chip.supports_n_to_2n
        measurement = find_not_measurement(target, 4, kind=ActivationKind.N_TO_2N)
        assert measurement is not None
        assert measurement.n_destination_rows == 4


class TestMDieCap:
    """The 8Gb M-die stops at 8:8 (max_simultaneous_n == 8, no N:2N)."""

    def test_cap_rejects_sixteen(self, hynix_targets):
        target = hynix_targets["hynix-8gb-m-x4-2666"]
        assert target.spec.chip.max_simultaneous_n == 8
        assert find_not_measurement(target, 16) is None
        assert find_logic_measurement(target, "and", 16) is None

    def test_cap_allows_eight(self, hynix_targets):
        target = hynix_targets["hynix-8gb-m-x4-2666"]
        not_measurement = find_not_measurement(target, 8)
        assert not_measurement is not None
        assert not_measurement.n_destination_rows == 8
        logic_measurement = find_logic_measurement(target, "and", 8)
        assert logic_measurement is not None


class TestRegionPredicate:
    """The predicate must resolve the bank lazily (see runner.py)."""

    def test_classification_matches_pattern_regions(self, hynix_targets):
        target = next(iter(hynix_targets.values()))
        decoder = target.module.decoder
        geometry = target.spec.chip.geometry
        sa_first, sa_last = target.subarray_pair
        bank = target.module.chips[0].bank(target.bank)

        seen = set()
        for offset_first in range(0, geometry.rows_per_subarray, 7):
            for offset_last in range(0, geometry.rows_per_subarray, 11):
                row_first = geometry.bank_row(sa_first, offset_first)
                row_last = geometry.bank_row(sa_last, offset_last)
                pattern = decoder.neighboring_pattern(
                    target.bank, row_first, row_last
                )
                if not pattern.rows_first or not pattern.rows_last:
                    continue
                regions = bank.pattern_regions(pattern)
                seen.add(regions)
                for first, last in ((0, 0), (1, 1), (2, 2), (0, 2)):
                    predicate = region_predicate(target, first, last)
                    assert predicate(pattern, row_first, row_last) == (
                        regions == (first, last)
                    )
        assert len(seen) > 1  # the scan saw more than one region class

    def test_rejects_empty_row_sets(self, hynix_targets):
        target = next(iter(hynix_targets.values()))
        decoder = target.module.decoder
        geometry = target.spec.chip.geometry
        predicate = region_predicate(target, 0, 0)
        # Scan for a pattern with an empty side (LAST_ONLY decodings).
        for offset in range(geometry.rows_per_subarray):
            row_first = geometry.bank_row(target.subarray_pair[0], offset)
            row_last = geometry.bank_row(target.subarray_pair[1], offset)
            pattern = decoder.neighboring_pattern(target.bank, row_first, row_last)
            if not pattern.rows_first or not pattern.rows_last:
                assert predicate(pattern, row_first, row_last) is False
                return
        pytest.skip("no empty-sided pattern in the scanned range")

    def test_survives_state_release(self, hynix_targets):
        # The sweep engine releases and lazily rebuilds module state when
        # targets cross process boundaries; a predicate captured before
        # the release must classify against the *current* bank instance.
        target = next(iter(hynix_targets.values()))
        decoder = target.module.decoder
        geometry = target.spec.chip.geometry
        sa_first, sa_last = target.subarray_pair
        pattern = None
        for offset in range(geometry.rows_per_subarray):
            row_first = geometry.bank_row(sa_first, offset)
            row_last = geometry.bank_row(sa_last, 0)
            candidate = decoder.neighboring_pattern(target.bank, row_first, row_last)
            if candidate.rows_first and candidate.rows_last:
                pattern = candidate
                break
        assert pattern is not None

        predicate = region_predicate(target, 0, 0)
        before = predicate(pattern, row_first, row_last)
        target.module.release_state()
        after = predicate(pattern, row_first, row_last)
        assert before == after
        bank = target.module.chips[0].bank(target.bank)
        assert after == (bank.pattern_regions(pattern) == (0, 0))
