"""Tests for resilient sweep execution: retry, quarantine, checkpoint/resume.

The contract under test (ISSUE: robustness): a fault-retried or resumed
run must be **bit-identical** to an uninterrupted fault-free run on all
surviving targets — transient faults retry by rebuilding whole module
groups from the seed tree, persistent failures quarantine whole groups,
and checkpoints round-trip records exactly.
"""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.characterization import SMOKE, Resilience, RetryPolicy, run_experiment
from repro.characterization.experiments.base import NotVariant, not_sweep
from repro.characterization.parallel import (
    ProcessPoolSweepExecutor,
    SerialExecutor,
    run_group_with_retry,
)
from repro.characterization.resilience import (
    CheckpointStore,
    SweepSession,
    sweep_fingerprint,
    work_fingerprint,
)
from repro.characterization.runner import Scale, iter_descriptors
from repro.dram.config import ChipGeometry
from repro.errors import ConfigurationError, TargetQuarantinedError
from repro.faults import FaultPlan

#: A scale whose module groups hold TWO targets each (two subarray
#: pairs per bank), for collateral-quarantine coverage; SMOKE groups are
#: single-target.
PAIRED = Scale(
    name="paired",
    modules_per_spec=1,
    chips_per_module=1,
    banks_per_module=1,
    pairs_per_bank=2,
    trials=10,
    geometry=ChipGeometry(
        banks=1, subarrays_per_bank=4, rows_per_subarray=96, columns=32
    ),
)

#: A transient-fault plan with no permanent failures: retried runs must
#: end bit-identical to fault-free ones (rate tuned so a SMOKE sweep
#: sees a handful of faults, not a blizzard — each target rolls the
#: timeout once per trial per program).
TRANSIENT_PLAN = FaultPlan(seed=1, host_timeout_rate=2e-3)

#: One permanently-dead module on top of the transient noise.
BROKEN_PLAN = FaultPlan(
    seed=1,
    host_timeout_rate=2e-4,
    broken_targets=("hynix-4gb-m-x8-2666[0]",),
)

#: Fast retry for tests: no real sleeping.
FAST_RETRY = RetryPolicy(backoff_s=0.0)


def _stats(result):
    """Comparable (exact) form of an ExperimentResult's groups."""
    return {label: stats.__dict__ for label, stats in result.groups.items()}


@dataclasses.dataclass(frozen=True)
class _CountRowsWork:
    """Trivial picklable work: one record per target."""

    def fingerprint_token(self):
        return "count-rows"

    def __call__(self, target):
        return [(target.spec.name, np.array([float(target.bank)]), target.weight)]


class _InterruptAfter:
    """Work that raises KeyboardInterrupt after ``after`` targets.

    Serial-executor only (carries in-process state).  Shares the plain
    work's checkpoint fingerprint via ``fingerprint_token`` so a later
    resume with :class:`_CountRowsWork` accepts the partial checkpoint.
    """

    def __init__(self, after: int):
        self.after = after
        self.calls = 0

    def fingerprint_token(self):
        return "count-rows"

    def __call__(self, target):
        if self.calls >= self.after:
            raise KeyboardInterrupt()
        self.calls += 1
        return _CountRowsWork()(target)


class TestRetry:
    def test_fault_retried_run_bit_identical_to_fault_free(self):
        baseline = run_experiment("fig7", scale=SMOKE, seed=0)
        res = Resilience(faults=TRANSIENT_PLAN, retry=FAST_RETRY)
        faulted = run_experiment("fig7", scale=SMOKE, seed=0, resilience=res)
        assert faulted.health.retries > 0  # the plan actually fired
        assert faulted.health.quarantined_count == 0
        assert _stats(baseline) == _stats(faulted)

    def test_flaky_target_recovers_within_budget(self):
        plan = FaultPlan(
            flaky_targets=("hynix-4gb-m-x8-2666[0]",), flaky_target_attempts=2
        )
        baseline = run_experiment("fig7", scale=SMOKE, seed=0)
        res = Resilience(faults=plan, retry=FAST_RETRY)
        result = run_experiment("fig7", scale=SMOKE, seed=0, resilience=res)
        assert result.health.quarantined_count == 0
        assert result.health.retries >= 2  # two failed attempts, then ok
        assert _stats(baseline) == _stats(result)

    def test_serial_and_pool_identical_under_faults(self):
        serial = run_experiment(
            "fig7", scale=SMOKE, seed=0,
            resilience=Resilience(faults=BROKEN_PLAN, retry=FAST_RETRY),
        )
        pooled = run_experiment(
            "fig7", scale=SMOKE, seed=0, jobs=2,
            resilience=Resilience(faults=BROKEN_PLAN, retry=FAST_RETRY),
        )
        assert _stats(serial) == _stats(pooled)
        assert (
            [q.label for q in serial.health.quarantined]
            == [q.label for q in pooled.health.quarantined]
        )

    def test_attempt_counting(self):
        res = Resilience(faults=TRANSIENT_PLAN, retry=FAST_RETRY)
        result = run_experiment("fig7", scale=SMOKE, seed=0, resilience=res)
        health = result.health
        # 9 single-target groups at SMOKE; each retry adds one attempt.
        assert health.total_targets == 9
        assert health.completed_targets == 9
        assert health.attempts == 9 + health.retries


class TestQuarantine:
    def test_broken_target_quarantined_exactly(self):
        baseline = run_experiment("fig7", scale=SMOKE, seed=0)
        res = Resilience(faults=BROKEN_PLAN, retry=FAST_RETRY)
        result = run_experiment("fig7", scale=SMOKE, seed=0, resilience=res)
        health = result.health
        assert health.quarantined_count == 1
        bad = health.quarantined[0]
        assert bad.label.startswith("hynix-4gb-m-x8-2666[0]")
        assert not bad.collateral
        assert bad.attempts == FAST_RETRY.max_attempts
        assert "permanently broken" in bad.reason
        assert health.completed_targets == health.total_targets - 1
        # Survivors are bit-identical to the fault-free run wherever the
        # quarantined module does not contribute (32 dst: Samsung and the
        # dead module never contribute at SMOKE... the dead module DOES
        # contribute, so only structural equality is asserted here; exact
        # equality of survivors is pinned at the record level below).
        assert set(result.groups) == set(baseline.groups)

    def test_quarantine_disabled_escalates(self):
        res = Resilience(
            faults=BROKEN_PLAN,
            retry=RetryPolicy(backoff_s=0.0, quarantine=False),
        )
        with pytest.raises(TargetQuarantinedError, match="hynix-4gb-m-x8-2666"):
            run_experiment("fig7", scale=SMOKE, seed=0, resilience=res)

    def test_module_mates_quarantined_as_collateral(self):
        # PAIRED groups hold two targets; breaking pair(0, 1) must take
        # pair(2, 3) of the same module out as collateral.
        plan = FaultPlan(broken_targets=("hynix-4gb-m-x8-2666[0] bank0 pair(0, 1)",))
        descriptors = [
            d for d in iter_descriptors(PAIRED)
            if d.spec_name == "hynix-4gb-m-x8-2666"
        ]
        assert len(descriptors) == 2
        outcome = run_group_with_retry(
            _CountRowsWork(), PAIRED, 0, descriptors, plan, FAST_RETRY
        )
        assert not outcome.records
        assert [q.collateral for q in outcome.quarantined] == [False, True]
        assert "module-mate" in outcome.quarantined[1].reason

    def test_record_level_survivors_identical(self):
        descriptors = iter_descriptors(SMOKE)
        clean = SerialExecutor().run(_CountRowsWork(), SMOKE, 0, descriptors)
        res = Resilience(faults=BROKEN_PLAN, retry=FAST_RETRY)
        outcome = SerialExecutor().run_resilient(
            _CountRowsWork(), SMOKE, 0, descriptors, resilience=res
        )
        quarantined = {q.index for q in outcome.health.quarantined}
        assert quarantined == {0}
        survivors = [r for r in clean if r[0] not in quarantined]
        assert _records_equal(outcome.records, survivors)


def _records_equal(a, b):
    if len(a) != len(b):
        return False
    for (ia, pa), (ib, pb) in zip(a, b):
        if ia != ib or len(pa) != len(pb):
            return False
        for (la, ra, wa), (lb, rb, wb) in zip(pa, pb):
            if la != lb or wa != wb or not np.array_equal(ra, rb):
                return False
    return True


class TestCheckpointResume:
    def test_checkpoint_round_trips_records_exactly(self, tmp_path):
        descriptors = iter_descriptors(SMOKE)
        path = str(tmp_path / "ckpt.json")
        fingerprint = sweep_fingerprint(
            _CountRowsWork(), SMOKE, 0, descriptors, None
        )
        store = CheckpointStore(path, fingerprint)
        records = SerialExecutor().run(_CountRowsWork(), SMOKE, 0, descriptors)
        # Perturb a rate to a value that exercises float round-tripping.
        records[0][1][0] = (
            records[0][1][0][0],
            np.array([0.1 + 0.2, 1.0 / 3.0]),
            records[0][1][0][2],
        )
        from repro.characterization.results import SweepHealth

        store.save(records, [], SweepHealth())
        loaded, quarantined, age_s = store.load()
        assert _records_equal(loaded, sorted(records, key=lambda r: r[0]))
        assert quarantined == []
        assert age_s >= 0.0

    def test_interrupt_flushes_and_resume_is_bit_identical(self, tmp_path):
        descriptors = iter_descriptors(SMOKE)
        clean = SerialExecutor().run(_CountRowsWork(), SMOKE, 0, descriptors)

        interrupted = Resilience(checkpoint_dir=str(tmp_path), retry=FAST_RETRY)
        interrupted.begin_experiment("demo")
        with pytest.raises(KeyboardInterrupt):
            SerialExecutor().run_resilient(
                _InterruptAfter(4), SMOKE, 0, descriptors, resilience=interrupted
            )
        # The flush-on-interrupt left a checkpoint with the 4 finished
        # targets.
        ckpt = json.loads((tmp_path / "demo-sweep00.json").read_text())
        assert len(ckpt["records"]) == 4

        resumed = Resilience(
            checkpoint_dir=str(tmp_path), resume=True, retry=FAST_RETRY
        )
        resumed.begin_experiment("demo")
        outcome = SerialExecutor().run_resilient(
            _CountRowsWork(), SMOKE, 0, descriptors, resilience=resumed
        )
        assert outcome.health.resumed_targets == 4
        assert outcome.health.checkpoint_age_s is not None
        assert _records_equal(outcome.records, clean)

    def test_resume_under_jobs_2_is_bit_identical(self, tmp_path):
        descriptors = iter_descriptors(SMOKE)
        clean = SerialExecutor().run(_CountRowsWork(), SMOKE, 0, descriptors)

        interrupted = Resilience(checkpoint_dir=str(tmp_path), retry=FAST_RETRY)
        interrupted.begin_experiment("demo")
        with pytest.raises(KeyboardInterrupt):
            SerialExecutor().run_resilient(
                _InterruptAfter(5), SMOKE, 0, descriptors, resilience=interrupted
            )

        resumed = Resilience(
            checkpoint_dir=str(tmp_path), resume=True, retry=FAST_RETRY
        )
        resumed.begin_experiment("demo")
        outcome = ProcessPoolSweepExecutor(2).run_resilient(
            _CountRowsWork(), SMOKE, 0, descriptors, resilience=resumed
        )
        assert outcome.health.resumed_targets == 5
        assert _records_equal(outcome.records, clean)

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        descriptors = iter_descriptors(SMOKE)
        first = Resilience(checkpoint_dir=str(tmp_path))
        first.begin_experiment("demo")
        SerialExecutor().run_resilient(
            _CountRowsWork(), SMOKE, 0, descriptors, resilience=first
        )
        # Same tag, different sweep seed: the checkpoint must be refused.
        second = Resilience(checkpoint_dir=str(tmp_path), resume=True)
        second.begin_experiment("demo")
        with pytest.raises(ConfigurationError, match="different sweep"):
            SerialExecutor().run_resilient(
                _CountRowsWork(), SMOKE, 1, descriptors, resilience=second
            )

    def test_missing_checkpoint_is_fresh_run(self, tmp_path):
        descriptors = iter_descriptors(SMOKE)
        res = Resilience(checkpoint_dir=str(tmp_path), resume=True)
        res.begin_experiment("demo")
        outcome = SerialExecutor().run_resilient(
            _CountRowsWork(), SMOKE, 0, descriptors, resilience=res
        )
        assert outcome.health.resumed_targets == 0
        assert outcome.health.completed_targets == len(descriptors)

    def test_checkpoints_are_sweep_ordinal_named(self, tmp_path):
        res = Resilience(checkpoint_dir=str(tmp_path))
        res.begin_experiment("fig10")
        assert res.next_checkpoint_path().endswith("fig10-sweep00.json")
        assert res.next_checkpoint_path().endswith("fig10-sweep01.json")
        res.begin_experiment("fig10")  # a fresh run restarts numbering
        assert res.next_checkpoint_path().endswith("fig10-sweep00.json")

    def test_experiment_checkpoint_resume_end_to_end(self, tmp_path):
        baseline = run_experiment("fig7", scale=SMOKE, seed=0)
        first = Resilience(checkpoint_dir=str(tmp_path), retry=FAST_RETRY)
        run_experiment("fig7", scale=SMOKE, seed=0, resilience=first)
        resumed = Resilience(
            checkpoint_dir=str(tmp_path), resume=True, retry=FAST_RETRY
        )
        result = run_experiment("fig7", scale=SMOKE, seed=0, resilience=resumed)
        assert result.health.resumed_targets == 9
        assert result.health.attempts == 0  # nothing re-measured
        assert _stats(baseline) == _stats(result)


class TestWorkerDeath:
    def test_killed_worker_restarts_and_stays_bit_identical(self):
        descriptors = iter_descriptors(SMOKE)
        clean = SerialExecutor().run(_CountRowsWork(), SMOKE, 0, descriptors)
        plan = FaultPlan(kill_chunk_indices=(0,))
        res = Resilience(faults=plan, retry=FAST_RETRY)
        outcome = ProcessPoolSweepExecutor(2).run_resilient(
            _CountRowsWork(), SMOKE, 0, descriptors, resilience=res
        )
        assert outcome.health.worker_restarts == 1
        assert _records_equal(outcome.records, clean)

    def test_persistent_worker_death_exhausts_restart_budget(self):
        from repro.errors import TransientInfrastructureError

        descriptors = iter_descriptors(SMOKE)
        plan = FaultPlan(worker_death_rate=1.0)
        res = Resilience(faults=plan, retry=RetryPolicy(max_attempts=1))
        with pytest.raises(TransientInfrastructureError, match="pool died"):
            ProcessPoolSweepExecutor(2).run_resilient(
                _CountRowsWork(), SMOKE, 0, descriptors, resilience=res
            )


class TestFingerprinting:
    def test_work_fingerprint_is_process_stable(self):
        variants = (NotVariant(1), NotVariant(2))
        token = work_fingerprint(variants)
        assert "0x" not in token  # no memory addresses
        assert token == work_fingerprint((NotVariant(1), NotVariant(2)))

    def test_fingerprint_ignores_job_count_but_not_faults(self):
        descriptors = iter_descriptors(SMOKE)
        base = sweep_fingerprint(_CountRowsWork(), SMOKE, 0, descriptors, None)
        assert base == sweep_fingerprint(
            _CountRowsWork(), SMOKE, 0, descriptors, None
        )
        assert base != sweep_fingerprint(
            _CountRowsWork(), SMOKE, 1, descriptors, None
        )
        assert base != sweep_fingerprint(
            _CountRowsWork(), SMOKE, 0, descriptors, TRANSIENT_PLAN
        )


class TestSweepLevelApi:
    def test_not_sweep_accepts_resilience(self):
        res = Resilience(faults=TRANSIENT_PLAN, retry=FAST_RETRY)
        groups = not_sweep(SMOKE, 0, [NotVariant(1)], resilience=res)
        baseline = not_sweep(SMOKE, 0, [NotVariant(1)])
        assert sorted(groups) == sorted(baseline)
        for label in groups:
            assert np.array_equal(
                groups[label].values(), baseline[label].values()
            )
        assert res.health.total_targets == 9

    def test_health_accumulates_across_sweeps(self):
        res = Resilience(retry=FAST_RETRY)
        res.begin_experiment("x")
        not_sweep(SMOKE, 0, [NotVariant(1)], resilience=res)
        not_sweep(SMOKE, 0, [NotVariant(2)], resilience=res)
        assert res.health.total_targets == 18
        assert res.health.completed_targets == 18
