"""Tests for the Table-1 fleet construction."""

import pytest

from repro.characterization.fleet import (
    all_specs,
    iter_modules,
    micron_specs,
    specs_for,
    table1_specs,
)
from repro.dram.config import ActivationSupport, ChipGeometry, Manufacturer


class TestTable1Population:
    def test_analyzed_totals_match_paper(self):
        specs = table1_specs()
        assert sum(s.module_count for s in specs) == 22
        assert sum(s.total_chips for s in specs) == 256

    def test_full_population_matches_paper(self):
        specs = all_specs()
        assert sum(s.module_count for s in specs) == 28
        assert sum(s.total_chips for s in specs) == 280

    def test_manufacturer_split(self):
        hynix = [s for s in table1_specs() if s.chip.manufacturer is Manufacturer.SK_HYNIX]
        samsung = [s for s in table1_specs() if s.chip.manufacturer is Manufacturer.SAMSUNG]
        assert sum(s.module_count for s in hynix) == 18
        assert sum(s.module_count for s in samsung) == 4
        assert sum(s.total_chips for s in hynix) == 224
        assert sum(s.total_chips for s in samsung) == 32

    def test_micron_excluded_from_table1(self):
        assert all(
            s.chip.manufacturer is not Manufacturer.MICRON for s in table1_specs()
        )
        assert all(
            s.chip.activation_support is ActivationSupport.NONE
            for s in micron_specs()
        )

    def test_samsung_is_sequential_only(self):
        for spec in specs_for([Manufacturer.SAMSUNG]):
            assert spec.chip.activation_support is ActivationSupport.SEQUENTIAL_ONLY
            assert spec.chip.max_simultaneous_n == 1

    def test_footnote12_module_capped_at_8(self):
        spec = next(s for s in table1_specs() if s.name == "hynix-8gb-m-x4-2666")
        assert spec.chip.max_simultaneous_n == 8

    def test_speed_grades_present(self):
        speeds = {s.chip.speed_rate_mts for s in table1_specs()}
        assert {2133, 2400, 2666, 3200} <= speeds

    def test_geometry_injection(self):
        geometry = ChipGeometry(
            banks=1, subarrays_per_bank=2, rows_per_subarray=96, columns=32
        )
        for spec in table1_specs(geometry):
            assert spec.chip.geometry is geometry

    def test_spec_names_unique(self):
        names = [s.name for s in all_specs()]
        assert len(names) == len(set(names))


class TestIterModules:
    def test_instantiates_and_limits(self):
        geometry = ChipGeometry(
            banks=1, subarrays_per_bank=2, rows_per_subarray=96, columns=32
        )
        seen = []
        for spec, module in iter_modules(
            table1_specs(geometry)[:3], modules_per_spec=1, chips_per_module=1, seed=0
        ):
            seen.append((spec.name, module.chip_count))
        assert len(seen) == 3
        assert all(count == 1 for _name, count in seen)

    def test_respects_module_count_ceiling(self):
        geometry = ChipGeometry(
            banks=1, subarrays_per_bank=2, rows_per_subarray=96, columns=32
        )
        spec = table1_specs(geometry)[2]  # module_count == 1
        modules = list(
            iter_modules([spec], modules_per_spec=5, chips_per_module=1, seed=0)
        )
        assert len(modules) == 1
