"""Tests for box statistics, weighted samples, and result containers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.characterization.metrics import BoxStats, WeightedSamples
from repro.characterization.results import ExperimentResult

rates = st.lists(
    st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=50
)


class TestBoxStats:
    def test_known_values(self):
        stats = BoxStats.from_values(np.arange(101) / 100.0)
        assert stats.median == pytest.approx(0.5)
        assert stats.q1 == pytest.approx(0.25)
        assert stats.q3 == pytest.approx(0.75)
        assert stats.iqr == pytest.approx(0.5)
        assert stats.minimum == 0.0
        assert stats.maximum == 1.0
        assert stats.count == 101

    @given(rates)
    def test_ordering_invariant(self, values):
        stats = BoxStats.from_values(np.array(values))
        assert (
            stats.minimum <= stats.q1 <= stats.median <= stats.q3 <= stats.maximum
        )
        # The mean is only bounded up to floating-point summation error.
        eps = 1e-12
        assert stats.minimum - eps <= stats.mean <= stats.maximum + eps

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxStats.from_values(np.array([]))

    def test_format_percent(self):
        text = BoxStats.from_values(np.array([0.5])).format_percent()
        assert "mean  50.0%" in text


class TestWeightedSamples:
    def test_weights_repeat_samples(self):
        samples = WeightedSamples()
        samples.add(np.array([0.0]), weight=1)
        samples.add(np.array([1.0]), weight=3)
        assert samples.mean == pytest.approx(0.75)
        assert samples.values().tolist() == [0.0, 1.0, 1.0, 1.0]

    def test_raw_count_ignores_weights(self):
        samples = WeightedSamples()
        samples.add(np.array([0.5, 0.5]), weight=9)
        assert samples.raw_count == 2

    def test_empty(self):
        samples = WeightedSamples()
        assert samples.empty
        assert samples.values().size == 0
        with pytest.raises(ValueError):
            _ = samples.mean

    def test_extend(self):
        a, b = WeightedSamples(), WeightedSamples()
        a.add(np.array([0.1]))
        b.add(np.array([0.9]))
        a.extend(b)
        assert a.mean == pytest.approx(0.5)

    def test_bad_weight(self):
        with pytest.raises(ValueError):
            WeightedSamples().add(np.array([0.5]), weight=0)

    @given(rates, st.integers(min_value=1, max_value=5))
    def test_weighted_mean_matches_repeat(self, values, weight):
        samples = WeightedSamples()
        samples.add(np.array(values), weight=weight)
        assert samples.mean == pytest.approx(np.mean(values))

    def test_box_uses_weights(self):
        samples = WeightedSamples()
        samples.add(np.array([0.0]), weight=1)
        samples.add(np.array([1.0]), weight=9)
        assert samples.box().median == 1.0


class TestExperimentResult:
    def _result(self):
        result = ExperimentResult("figX", "demo")
        result.add_group("a", BoxStats.from_values(np.array([0.5, 0.7])))
        result.add_group("b", BoxStats.from_values(np.array([0.9])))
        return result

    def test_group_means(self):
        result = self._result()
        assert result.group_means() == {
            "a": pytest.approx(0.6),
            "b": pytest.approx(0.9),
        }
        assert result.mean_of("b") == pytest.approx(0.9)

    def test_format_table_contains_groups(self):
        text = self._result().format_table()
        assert "figX" in text and "a" in text and "b" in text

    def test_format_heatmap(self):
        result = ExperimentResult("figY", "heat")
        result.extras["heatmap"] = {(0, 0): 0.5, (2, 1): 0.9}
        text = result.format_heatmap()
        assert "50.0%" in text and "90.0%" in text and "--" in text

    def test_format_heatmap_missing_key(self):
        with pytest.raises(KeyError):
            self._result().format_heatmap()
