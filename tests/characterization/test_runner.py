"""Tests for the sweep runner machinery."""

import numpy as np
import pytest

from repro.characterization.runner import (
    SMOKE,
    Scale,
    find_logic_measurement,
    find_not_measurement,
    good_cell_mask,
    iter_targets,
    region_predicate,
)
from repro.core.success import SuccessResult
from repro.dram.config import ActivationSupport, Manufacturer
from repro.dram.decoder import ActivationKind


def first_target(**kwargs):
    return next(iter(iter_targets(SMOKE, seed=0, **kwargs)))


class TestIterTargets:
    def test_covers_all_specs(self):
        names = {t.spec.name for t in iter_targets(SMOKE, seed=0)}
        assert len(names) == 9  # Table-1 spec types

    def test_manufacturer_filter(self):
        targets = list(
            iter_targets(SMOKE, seed=0, manufacturers=[Manufacturer.SAMSUNG])
        )
        assert targets
        assert all(t.manufacturer is Manufacturer.SAMSUNG for t in targets)

    def test_weights_reflect_population(self):
        weights = {
            t.spec.name: t.weight for t in iter_targets(SMOKE, seed=0)
        }
        assert weights["hynix-4gb-m-x8-2666"] == 9
        assert weights["hynix-8gb-a-x8-2666"] == 1

    def test_micron_included_on_request(self):
        targets = list(iter_targets(SMOKE, seed=0, include_micron=True))
        assert any(t.manufacturer is Manufacturer.MICRON for t in targets)

    def test_pair_seed_stable(self):
        a = first_target().pair_seed("x")
        b = first_target().pair_seed("x")
        assert a == b


class TestFindMeasurements:
    def test_not_measurement_on_hynix(self):
        target = first_target(manufacturers=[Manufacturer.SK_HYNIX])
        measurement = find_not_measurement(target, 4)
        assert measurement is not None
        assert measurement.n_destination_rows == 4

    def test_not_32_requires_n2n_support(self):
        for target in iter_targets(
            SMOKE, seed=0, manufacturers=[Manufacturer.SK_HYNIX]
        ):
            measurement = find_not_measurement(target, 32)
            if target.spec.chip.supports_n_to_2n:
                assert measurement is not None
            else:
                assert measurement is None

    def test_samsung_only_single_destination(self):
        target = first_target(manufacturers=[Manufacturer.SAMSUNG])
        assert find_not_measurement(target, 1) is not None
        assert find_not_measurement(target, 2) is None

    def test_micron_never(self):
        targets = [
            t
            for t in iter_targets(SMOKE, seed=0, include_micron=True)
            if t.spec.chip.activation_support is ActivationSupport.NONE
        ]
        assert targets
        assert find_not_measurement(targets[0], 1) is None

    def test_logic_measurement_caps_by_die(self):
        for target in iter_targets(
            SMOKE, seed=0, manufacturers=[Manufacturer.SK_HYNIX]
        ):
            measurement = find_logic_measurement(target, "and", 16)
            if target.spec.chip.max_simultaneous_n >= 16:
                assert measurement is not None
            else:
                assert measurement is None

    def test_logic_needs_two_inputs(self):
        target = first_target(manufacturers=[Manufacturer.SK_HYNIX])
        assert find_logic_measurement(target, "and", 1) is None

    def test_region_predicate_filters(self):
        target = first_target(manufacturers=[Manufacturer.SK_HYNIX])
        predicate = region_predicate(target, 0, 2)
        measurement = find_not_measurement(target, 1, predicate=predicate)
        if measurement is None:
            pytest.skip("no Close-Far 1:1 pair at smoke scale")
        bank = target.module.chips[0].bank(target.bank)
        assert bank.pattern_regions(measurement.pattern) == (0, 2)


class TestGoodCellMask:
    def test_threshold(self):
        result = SuccessResult(np.array([[95, 80]]), trials=100)
        mask = good_cell_mask(result, threshold=0.9)
        assert mask.tolist() == [[True, False]]


class TestScale:
    def test_with_trials(self):
        scaled = SMOKE.with_trials(7)
        assert scaled.trials == 7
        assert scaled.geometry == SMOKE.geometry
