"""Tests for the parallel sweep execution engine.

The load-bearing guarantee is *bit-identity*: a sweep fanned out over a
process pool must produce exactly the numbers the serial loop produces —
same group keys, same per-cell rate arrays in the same order.  The
determinism regression tests pin that for three representative
experiments (plain NOT sweep, logic sweep, temperature sweep with the
good-cells filter) at SMOKE scale.
"""

import numpy as np
import pytest

from repro.characterization import SMOKE, run_experiment
from repro.characterization.experiments.base import (
    LogicVariant,
    NotVariant,
    logic_sweep,
    not_sweep,
)
from repro.characterization.parallel import (
    ProcessPoolSweepExecutor,
    SerialExecutor,
    chunk_groups,
    make_executor,
    module_groups,
    run_target_block,
)
from repro.characterization.runner import (
    iter_descriptors,
    iter_targets,
    materialize_targets,
)
from repro.dram.config import Manufacturer
from repro.errors import ConfigurationError


def assert_groups_identical(serial, parallel):
    """Bit-for-bit equality of two GroupSamples mappings."""
    assert sorted(serial) == sorted(parallel)
    for label in serial:
        a = serial[label].values()
        b = parallel[label].values()
        assert a.shape == b.shape, label
        assert np.array_equal(a, b), label


class TestDescriptors:
    def test_descriptors_mirror_iter_targets(self):
        descriptors = iter_descriptors(SMOKE)
        targets = list(iter_targets(SMOKE, seed=0))
        assert len(descriptors) == len(targets)
        for descriptor, target in zip(descriptors, targets):
            assert descriptor.spec_name == target.spec.name
            assert descriptor.bank == target.bank
            assert descriptor.subarray_pair == target.subarray_pair
            assert descriptor.weight == target.weight

    def test_indices_are_canonical_order(self):
        descriptors = iter_descriptors(SMOKE, include_micron=True)
        assert [d.index for d in descriptors] == list(range(len(descriptors)))

    def test_manufacturer_filter(self):
        descriptors = iter_descriptors(
            SMOKE, manufacturers=[Manufacturer.SAMSUNG]
        )
        assert descriptors
        assert all(d.spec_name.startswith("samsung") for d in descriptors)

    def test_materialize_single_module_matches_full_sweep(self):
        # Modules are seeded independently, so materializing one
        # module's descriptors alone must reconstruct the exact targets
        # the full serial sweep visits on that module.
        descriptors = iter_descriptors(SMOKE)
        key = descriptors[-1].module_key
        subset = [d for d in descriptors if d.module_key == key]
        rebuilt = list(materialize_targets(subset, SMOKE, seed=0))
        full = [
            t for t in iter_targets(SMOKE, seed=0) if t.spec.name == key[0]
        ]
        assert len(rebuilt) == len(full)
        for a, b in zip(rebuilt, full):
            assert a.label() == b.label()
            assert a.weight == b.weight
            assert a.module.decoder.neighboring_pattern(
                a.bank, 0, SMOKE.geometry.rows_per_subarray
            ) == b.module.decoder.neighboring_pattern(
                b.bank, 0, SMOKE.geometry.rows_per_subarray
            )


class TestChunking:
    def test_module_groups_never_split(self):
        groups = module_groups(iter_descriptors(SMOKE, include_micron=True))
        seen = set()
        for group in groups:
            keys = {d.module_key for d in group}
            assert len(keys) == 1
            key = keys.pop()
            assert key not in seen  # a module appears in exactly one group
            seen.add(key)

    def test_chunks_cover_everything_in_order(self):
        descriptors = iter_descriptors(SMOKE)
        chunks = chunk_groups(module_groups(descriptors), jobs=3)
        flattened = [d for chunk in chunks for d in chunk]
        assert flattened == descriptors

    def test_chunks_respect_module_boundaries(self):
        descriptors = iter_descriptors(SMOKE)
        chunks = chunk_groups(module_groups(descriptors), jobs=2)
        for chunk in chunks:
            keys = [d.module_key for d in chunk]
            # Within a chunk, each module's descriptors are contiguous.
            for i in range(1, len(keys)):
                if keys[i] != keys[i - 1]:
                    assert keys[i] not in keys[:i]
        # And no module spans two chunks.
        first_chunk_keys = [
            {d.module_key for d in chunk} for chunk in chunks
        ]
        for i, keys in enumerate(first_chunk_keys):
            for other in first_chunk_keys[i + 1 :]:
                assert not (keys & other)

    def test_empty_and_invalid(self):
        assert chunk_groups([], jobs=4) == []
        with pytest.raises(ConfigurationError):
            chunk_groups([], jobs=0)


class TestMakeExecutor:
    def test_serial_for_one_job(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(None), SerialExecutor)

    def test_pool_for_many_jobs(self):
        executor = make_executor(3)
        assert isinstance(executor, ProcessPoolSweepExecutor)
        assert executor.jobs == 3

    def test_explicit_executor_wins(self):
        explicit = SerialExecutor()
        assert make_executor(8, explicit) is explicit

    def test_rejects_bad_job_count(self):
        with pytest.raises(ConfigurationError):
            ProcessPoolSweepExecutor(0)


def _count_rows(target):
    """Trivial picklable work: one record per target."""
    return [(target.spec.name, np.array([float(target.bank)]), target.weight)]


class TestExecutors:
    def test_records_sorted_by_canonical_index(self):
        descriptors = iter_descriptors(SMOKE)
        serial = SerialExecutor().run(_count_rows, SMOKE, 0, descriptors)
        pooled = ProcessPoolSweepExecutor(2).run(
            _count_rows, SMOKE, 0, descriptors
        )
        assert [index for index, _ in serial] == [d.index for d in descriptors]
        assert serial == pooled


class TestDeterminismRegression:
    """Serial results == --jobs 2 results, bit for bit (SMOKE scale)."""

    def test_not_sweep_weighted_samples_identical(self):
        variants = [NotVariant(n) for n in (1, 2, 4)]
        serial = not_sweep(SMOKE, 0, variants)
        pooled = not_sweep(
            SMOKE, 0, variants, executor=ProcessPoolSweepExecutor(2)
        )
        assert_groups_identical(serial, pooled)

    def test_logic_sweep_weighted_samples_identical(self):
        variants = [LogicVariant("and", 2), LogicVariant("or", 4)]
        serial = logic_sweep(SMOKE, 0, variants)
        pooled = logic_sweep(
            SMOKE, 0, variants, executor=ProcessPoolSweepExecutor(2)
        )
        assert_groups_identical(serial, pooled)

    @pytest.mark.parametrize("experiment_id", ["fig7", "fig15", "fig19"])
    def test_experiment_identical_serial_vs_two_jobs(self, experiment_id):
        serial = run_experiment(experiment_id, scale=SMOKE, seed=0, jobs=1)
        pooled = run_experiment(experiment_id, scale=SMOKE, seed=0, jobs=2)
        assert sorted(serial.groups) == sorted(pooled.groups)
        # BoxStats are frozen dataclasses of floats: equality is exact.
        assert serial.groups == pooled.groups
        assert serial.notes == pooled.notes


class TestRunTargetBlock:
    def test_block_matches_per_module_blocks(self):
        # Splitting the sweep at module boundaries must not change
        # results: each module group is hermetic.
        descriptors = iter_descriptors(
            SMOKE, manufacturers=[Manufacturer.SK_HYNIX]
        )
        whole = run_target_block(_count_rows, SMOKE, 0, descriptors)
        split = []
        for group in module_groups(descriptors):
            split.extend(run_target_block(_count_rows, SMOKE, 0, group))
        assert whole == split
