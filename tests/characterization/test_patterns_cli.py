"""Tests for the data-pattern library and the characterization CLI."""

import numpy as np
import pytest

from repro.characterization.patterns import (
    all_ones,
    all_zeros,
    checkerboard,
    rand1_rand2,
    random_pattern,
)


class TestPatterns:
    def test_fixed_patterns(self):
        assert np.all(all_ones(16) == 1)
        assert np.all(all_zeros(16) == 0)
        assert all_ones(16).dtype == np.uint8

    def test_checkerboard_phases(self):
        a = checkerboard(8)
        b = checkerboard(8, phase=1)
        assert np.array_equal(a, 1 - b)
        assert a.tolist() == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_checkerboard_rejects_bad_phase(self):
        with pytest.raises(ValueError):
            checkerboard(8, phase=2)

    def test_random_pattern_reproducible(self):
        a = random_pattern(np.random.default_rng(3), 64)
        b = random_pattern(np.random.default_rng(3), 64)
        assert np.array_equal(a, b)
        assert set(np.unique(a)) <= {0, 1}

    def test_rand1_rand2_independent(self):
        rand1, rand2 = rand1_rand2(np.random.default_rng(4), 256)
        assert not np.array_equal(rand1, rand2)
        # Roughly half the bits agree, as for independent streams.
        assert np.mean(rand1 == rand2) == pytest.approx(0.5, abs=0.1)


class TestCli:
    def test_list(self, capsys):
        from repro.characterization.__main__ import main

        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "fig15" in output and "table1" in output

    def test_run_table1(self, capsys):
        from repro.characterization.__main__ import main

        assert main(["table1", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "SK Hynix" in output
        assert "paper-vs-measured" in output

    def test_report_cli_writes_file(self, tmp_path):
        from repro.analysis.report import main

        out = tmp_path / "report.md"
        assert main(["--scale", "smoke", "--out", str(out), "--only", "table1"]) == 0
        content = out.read_text()
        assert "table1" in content
