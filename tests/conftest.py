"""Shared fixtures.

Two module flavors are used throughout:

* ``ideal_host`` — a chip with :func:`repro.ideal_calibration`: noise-free
  and always-engaging, for *functional* tests (what an operation
  computes).
* ``real_host`` — the calibrated SK Hynix reference die, for *behavioral*
  tests (how reliably it computes, manufacturer policies, statistics).

Both use a small geometry so the whole suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ChipGeometry,
    SeedTree,
    ideal_calibration,
    micron_chip,
    samsung_chip,
    sk_hynix_chip,
)
from repro.bender import DramBenderHost
from repro.dram.module import Module

#: Small but structurally complete: 4 subarrays, 192 rows (12 LWL blocks,
#: divisible by 32 for the largest activation span), 64 columns.
SMALL_GEOMETRY = ChipGeometry(
    banks=2, subarrays_per_bank=4, rows_per_subarray=192, columns=64
)


@pytest.fixture(scope="session")
def small_geometry():
    return SMALL_GEOMETRY


@pytest.fixture(scope="session")
def hynix_config(small_geometry):
    return sk_hynix_chip().with_geometry(small_geometry)


@pytest.fixture(scope="session")
def samsung_config(small_geometry):
    return samsung_chip().with_geometry(small_geometry)


@pytest.fixture(scope="session")
def micron_config(small_geometry):
    return micron_chip().with_geometry(small_geometry)


@pytest.fixture()
def ideal_module(hynix_config):
    return Module(
        hynix_config,
        chip_count=1,
        seed_tree=SeedTree(7),
        calibration=ideal_calibration(),
    )


@pytest.fixture()
def ideal_host(ideal_module):
    return DramBenderHost(ideal_module)


@pytest.fixture()
def real_module(hynix_config):
    return Module(hynix_config, chip_count=1, seed_tree=SeedTree(7))


@pytest.fixture()
def real_host(real_module):
    return DramBenderHost(real_module)


@pytest.fixture()
def samsung_host(samsung_config):
    module = Module(samsung_config, chip_count=1, seed_tree=SeedTree(11))
    return DramBenderHost(module)


@pytest.fixture()
def micron_host(micron_config):
    module = Module(micron_config, chip_count=1, seed_tree=SeedTree(13))
    return DramBenderHost(module)


@pytest.fixture(params=["analog", "trace-verify"])
def backend(request):
    """A :class:`repro.substrate.SubstrateBackend` for measurement tests.

    Parameterized over the analog reference and the trace backend in
    verify mode (record + immediate JSON-codec round trip with
    byte-identity asserted), so every success-rate test that goes
    through the backend interface also exercises the trace machinery
    without touching disk.  Both serve results bit-identical to direct
    analog construction.
    """
    from repro.substrate import AnalogBackend, TraceBackend

    if request.param == "trace-verify":
        return TraceBackend.verify()
    return AnalogBackend()


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


def random_row(host: DramBenderHost, rng: np.random.Generator) -> np.ndarray:
    """A random module-width row pattern."""
    return rng.integers(0, 2, host.module.row_bits, dtype=np.uint8)
