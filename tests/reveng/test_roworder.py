"""Tests for RowHammer-based physical row order recovery."""

import pytest

from repro.reveng.roworder import RowOrderMapper
from repro.errors import ReverseEngineeringError


class TestRowOrderMapper:
    def test_recovers_physical_order(self, real_host):
        mapper = RowOrderMapper(real_host, bank=0, subarray=1)
        result = mapper.recover_order()
        subarray = real_host.module.chips[0].bank(0).subarrays[1]
        geometry = real_host.module.config.geometry
        truth = [
            geometry.bank_row(1, subarray.logical_at_physical(position))
            for position in range(geometry.rows_per_subarray)
        ]
        recovered = list(result.physical_order)
        assert recovered == truth or recovered == truth[::-1]

    def test_edge_rows_are_stripe_adjacent(self, real_host):
        mapper = RowOrderMapper(real_host, bank=0, subarray=0)
        result = mapper.recover_order()
        subarray = real_host.module.chips[0].bank(0).subarrays[0]
        geometry = real_host.module.config.geometry
        edges = {
            geometry.bank_row(0, subarray.logical_at_physical(0)),
            geometry.bank_row(
                0, subarray.logical_at_physical(geometry.rows_per_subarray - 1)
            ),
        }
        assert set(result.edge_rows) == edges

    def test_victims_are_physical_neighbors(self, real_host):
        mapper = RowOrderMapper(real_host, bank=0, subarray=1)
        geometry = real_host.module.config.geometry
        subarray = real_host.module.chips[0].bank(0).subarrays[1]
        row = geometry.bank_row(1, 50)
        victims = mapper.victims_of(row)
        expected = {
            geometry.bank_row(1, neighbor)
            for neighbor in subarray.physical_neighbors(50)
        }
        assert set(victims) == expected

    def test_insufficient_hammering_fails_loudly(self, real_host):
        mapper = RowOrderMapper(
            real_host, bank=0, subarray=1, hammer_count=10, min_flips=2
        )
        with pytest.raises(ReverseEngineeringError):
            mapper.recover_order()

    def test_position_of(self, real_host):
        mapper = RowOrderMapper(real_host, bank=0, subarray=1)
        result = mapper.recover_order()
        first = result.physical_order[0]
        assert result.position_of(first) == 0
