"""Tests for the activation-pattern scanner (§4.2 methodology)."""

import pytest

from repro.dram.decoder import ActivationKind
from repro.reveng.activation import (
    ActivationScanner,
    ObservedPattern,
    coverage_from_counts,
)
from repro.errors import AddressError


class TestObservedPattern:
    def test_labels(self):
        assert ObservedPattern(8, 16).label == "8:16"
        assert ObservedPattern(8, 16).engaged
        assert not ObservedPattern(0, 1).engaged


class TestCoverage:
    def test_normalization(self):
        coverage = coverage_from_counts({"8:8": 3, "none": 1})
        assert coverage == {"8:8": 0.75, "none": 0.25}

    def test_empty(self):
        assert coverage_from_counts({}) == {}


class TestScanner:
    def test_probe_matches_decoder_ground_truth(self, ideal_host):
        scanner = ActivationScanner(ideal_host, 0, 0, 1, seed=2)
        decoder = ideal_host.module.decoder
        geometry = ideal_host.module.config.geometry
        import numpy as np

        rng = np.random.default_rng(3)
        checked = 0
        for _ in range(30):
            row_f = geometry.bank_row(0, int(rng.integers(192)))
            row_l = geometry.bank_row(1, int(rng.integers(192)))
            truth = decoder.neighboring_pattern(0, row_f, row_l)
            observed = scanner.probe(row_f, row_l)
            if truth.kind is ActivationKind.LAST_ONLY:
                assert not observed.engaged
            else:
                assert observed.n_first == truth.n_first
                assert observed.n_last == truth.n_last
            checked += 1
        assert checked == 30

    def test_scan_counts_sum(self, ideal_host):
        scanner = ActivationScanner(ideal_host, 0, 0, 1, seed=4)
        counts = scanner.scan(40)
        assert sum(counts.values()) == 40

    def test_scan_finds_dominant_patterns(self, ideal_host):
        # With enough samples, 8:8 and 16:16 (the high-coverage types,
        # Fig. 5) must both appear.
        scanner = ActivationScanner(ideal_host, 0, 0, 1, seed=5)
        counts = scanner.scan(400)
        assert counts.get("8:8", 0) > 0
        assert counts.get("16:16", 0) > 0

    def test_rejects_non_neighbors(self, ideal_host):
        with pytest.raises(AddressError):
            ActivationScanner(ideal_host, 0, 0, 2)

    def test_samsung_scan_shows_sequential_only(self, samsung_host):
        scanner = ActivationScanner(samsung_host, 0, 0, 1, seed=6)
        counts = scanner.scan(25)
        assert set(counts) <= {"1:1", "none"}
        assert counts.get("1:1", 0) > 0

    def test_micron_scan_shows_nothing(self, micron_host):
        scanner = ActivationScanner(micron_host, 0, 0, 1, seed=7)
        counts = scanner.scan(25)
        assert set(counts) == {"none"}
