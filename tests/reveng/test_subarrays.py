"""Tests for RowClone-based subarray boundary mapping."""

import pytest

from repro.reveng.subarrays import SubarrayMap, SubarrayMapper
from repro.errors import ReverseEngineeringError


class TestSubarrayMapper:
    def test_recovers_exact_boundaries(self, ideal_host):
        mapper = SubarrayMapper(ideal_host, bank=0)
        recovered = mapper.map_bank(coarse_step=32)
        geometry = ideal_host.module.config.geometry
        expected = tuple(
            (s * geometry.rows_per_subarray, (s + 1) * geometry.rows_per_subarray)
            for s in range(geometry.subarrays_per_bank)
        )
        assert recovered.ranges == expected

    def test_recovers_on_real_chip_too(self, real_host):
        # RowClone is reliable enough on the calibrated die for the
        # mapper's threshold to hold.
        mapper = SubarrayMapper(real_host, bank=0)
        recovered = mapper.map_bank(coarse_step=48)
        assert recovered.count == 4

    def test_probe_count_is_sublinear(self, ideal_host):
        mapper = SubarrayMapper(ideal_host, bank=0)
        mapper.map_bank(coarse_step=32)
        total_rows = ideal_host.module.config.geometry.rows_per_bank
        assert mapper.probe_count < total_rows // 2

    def test_same_subarray_probe(self, ideal_host):
        mapper = SubarrayMapper(ideal_host, bank=0)
        assert mapper.same_subarray(10, 100)
        assert not mapper.same_subarray(10, 200)

    def test_exhaustive_groups(self, ideal_host):
        mapper = SubarrayMapper(ideal_host, bank=0)
        rows = [5, 100, 200, 300, 400, 500]
        groups = mapper.exhaustive_groups(rows)
        assert sorted(sorted(g) for g in groups) == [
            [5, 100], [200, 300], [400, 500],
        ]

    def test_rejects_bad_step(self, ideal_host):
        mapper = SubarrayMapper(ideal_host, bank=0)
        with pytest.raises(ValueError):
            mapper.map_bank(coarse_step=0)


class TestSubarrayMap:
    def test_lookup(self):
        table = SubarrayMap(ranges=((0, 10), (10, 30)))
        assert table.subarray_of(0) == 0
        assert table.subarray_of(9) == 0
        assert table.subarray_of(10) == 1
        assert list(table.rows_of(0)) == list(range(10))
        assert table.count == 2

    def test_uncovered_row(self):
        table = SubarrayMap(ranges=((0, 10),))
        with pytest.raises(ReverseEngineeringError):
            table.subarray_of(10)
