"""Tests for the SubstrateBackend protocol, spec parsing, and the
analog reference backend's delegation."""

import doctest

import numpy as np
import pytest

from repro.characterization.runner import SMOKE, find_not_measurement, iter_targets
from repro.core.success import LogicSuccessMeasurement, NotSuccessMeasurement
from repro.errors import SubstrateError, SurrogateTableError, TraceMismatchError
from repro.substrate import (
    AnalogBackend,
    SubstrateBackend,
    TraceBackend,
    distance_label,
    register_backend,
    reset_backend_cache,
    resolve_backend,
    unregister_backend,
)


def first_simultaneous_target(seed=0):
    """The first smoke-fleet target that can run simultaneous logic."""
    for target in iter_targets(SMOKE, seed):
        if target.supports_simultaneous:
            return target
    raise AssertionError("smoke fleet has no simultaneous-capable target")


class TestSpecParsing:
    def test_analog_resolves(self):
        assert isinstance(resolve_backend("analog"), AnalogBackend)

    def test_resolution_is_cached_per_spec(self):
        assert resolve_backend("analog") is resolve_backend("analog")

    def test_reset_cache_gives_fresh_instances(self):
        first = resolve_backend("analog")
        reset_backend_cache()
        assert resolve_backend("analog") is not first

    def test_instances_pass_through(self):
        backend = AnalogBackend()
        assert resolve_backend(backend) is backend

    def test_trace_verify_resolves(self):
        reset_backend_cache()
        backend = resolve_backend("trace-verify")
        assert isinstance(backend, TraceBackend)
        assert backend.mode == "verify"
        reset_backend_cache()

    def test_trace_record_resolves(self, tmp_path):
        backend = resolve_backend(f"trace-record:{tmp_path}/t.json")
        assert isinstance(backend, TraceBackend)
        assert backend.mode == "record"
        reset_backend_cache()

    def test_trace_replay_missing_file(self, tmp_path):
        with pytest.raises(TraceMismatchError):
            resolve_backend(f"trace-replay:{tmp_path}/missing.json")

    def test_surrogate_missing_file(self, tmp_path):
        with pytest.raises(SurrogateTableError):
            resolve_backend(f"surrogate:{tmp_path}/missing.json")

    @pytest.mark.parametrize("spec", ["", "bogus", "bogus:path", "surrogate"])
    def test_unknown_specs_rejected(self, spec):
        with pytest.raises(SubstrateError):
            resolve_backend(spec)

    def test_non_string_spec_rejected(self):
        with pytest.raises(SubstrateError):
            resolve_backend(42)

    def test_registry_wins_over_parsing(self):
        backend = AnalogBackend()
        spec = register_backend("test-double", backend)
        try:
            assert resolve_backend(spec) is backend
        finally:
            unregister_backend(spec)
        with pytest.raises(SubstrateError):
            resolve_backend("test-double")

    def test_unregister_is_idempotent(self):
        unregister_backend("never-registered")


class TestDistanceLabels:
    def test_module_doctests(self):
        import repro.substrate.base as base

        results = doctest.testmod(base)
        assert results.failed == 0
        assert results.attempted >= 2

    def test_region_pairs(self):
        assert distance_label(None) == "any"
        assert distance_label((0, 0)) == "close-close"
        assert distance_label((2, 0)) == "far-close"
        assert distance_label((1, 2)) == "middle-far"


class TestProtocolDefaults:
    def test_probability_defaults_to_none(self):
        assert AnalogBackend().probability("and", 2) is None

    def test_finalize_is_a_no_op(self):
        AnalogBackend().finalize()

    def test_abstract_backend_cannot_instantiate(self):
        with pytest.raises(TypeError):
            SubstrateBackend()


class TestAnalogDelegation:
    def test_not_measurement_at_is_the_reference_class(self, ideal_host):
        backend = AnalogBackend()
        from repro.core.addressing import find_pattern_pair
        from repro.dram.decoder import ActivationKind

        src, dst = find_pattern_pair(
            ideal_host.module.decoder,
            ideal_host.module.config.geometry,
            0, 0, 1, 1, ActivationKind.N_TO_N, seed=0,
        )
        measurement = backend.not_measurement_at(ideal_host, 0, src, dst)
        assert isinstance(measurement, NotSuccessMeasurement)

    def test_logic_measurement_at_is_the_reference_class(self, ideal_host):
        backend = AnalogBackend()
        from repro.core.addressing import find_pattern_pair
        from repro.dram.decoder import ActivationKind

        ref, com = find_pattern_pair(
            ideal_host.module.decoder,
            ideal_host.module.config.geometry,
            0, 2, 3, 4, ActivationKind.N_TO_N, seed=0,
        )
        measurement = backend.logic_measurement_at(ideal_host, 0, ref, com)
        assert isinstance(measurement, LogicSuccessMeasurement)

    def test_find_matches_direct_runner_call_bit_identically(self):
        # Same fleet coordinates, same pair seeds: the backend facade
        # must reproduce the pre-substrate code path exactly.
        target_a = first_simultaneous_target()
        via_backend = AnalogBackend().find_not_measurement(target_a, 2)
        counts_a = via_backend.run(20, np.random.default_rng(9)).success_counts

        target_b = first_simultaneous_target()
        direct = find_not_measurement(target_b, 2)
        counts_b = direct.run(20, np.random.default_rng(9)).success_counts
        assert np.array_equal(counts_a, counts_b)

    def test_region_constraint_translates_to_predicate(self):
        target = first_simultaneous_target()
        measurement = AnalogBackend().find_not_measurement(
            target, 1, regions=(1, 2)
        )
        if measurement is None:
            pytest.skip("no middle-far pair on this target")
        bank = target.module.chips[0].bank(target.bank)
        assert bank.pattern_regions(measurement.pattern) == (1, 2)
