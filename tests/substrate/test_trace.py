"""Record/replay trace backend: golden fixtures and strict-mismatch law.

The golden fixture ``data/golden_trace.json`` is a recording of the
fixed workload in :func:`golden_workload` — NOT + AND/NAND runs at two
temperatures on the deterministic golden host.  Two properties are
pinned against it:

* replaying the checked-in trace is byte-identical to running the same
  workload live on the analog reference, and
* re-recording the workload today reproduces the checked-in file
  exactly (so the fixture can never silently go stale).

Regenerate after an intentional analog-model change with::

    PYTHONPATH=src python tests/substrate/test_trace.py
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro import ChipGeometry, SeedTree, sk_hynix_chip
from repro.bender import DramBenderHost
from repro.core.addressing import find_pattern_pair
from repro.core.success import SuccessResult
from repro.dram.decoder import ActivationKind
from repro.dram.module import Module
from repro.errors import TraceMismatchError
from repro.substrate import AnalogBackend, TraceBackend, decode_result, encode_result

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trace.json"

#: Seed of the golden host's module; fixed forever.
GOLDEN_SEED = 7


def golden_host():
    """The deterministic host every golden-trace interaction runs on."""
    geometry = ChipGeometry(
        banks=2, subarrays_per_bank=4, rows_per_subarray=192, columns=64
    )
    config = sk_hynix_chip().with_geometry(geometry)
    module = Module(config, chip_count=1, seed_tree=SeedTree(GOLDEN_SEED))
    return DramBenderHost(module)


def _pairs(host):
    decoder = host.module.decoder
    geometry = host.module.config.geometry
    not_pair = find_pattern_pair(
        decoder, geometry, 0, 0, 1, 2, ActivationKind.N_TO_N, seed=0
    )
    logic_pair = find_pattern_pair(
        decoder, geometry, 0, 2, 3, 4, ActivationKind.N_TO_N, seed=0
    )
    return not_pair, logic_pair


def golden_workload(backend):
    """Run the fixed workload through ``backend``; encoded results out.

    Exercises both measurement kinds, a temperature change (part of the
    trace call key), a repeated run on one measurement (FIFO queues),
    and a non-default data-pattern mode.
    """
    host = golden_host()
    (src, dst), (ref, com) = _pairs(host)

    results = []
    not_m = backend.not_measurement_at(host, 0, src, dst)
    results.append(encode_result(not_m.run(25, np.random.default_rng(101))))
    host.module.temperature_c = 70.0
    results.append(encode_result(not_m.run(25, np.random.default_rng(102))))
    host.module.temperature_c = 50.0

    logic_m = backend.logic_measurement_at(host, 0, ref, com, base_op="and")
    pair = logic_m.run(25, np.random.default_rng(103))
    results.append(encode_result(pair.primary))
    results.append(encode_result(pair.complement))
    pair = logic_m.run(
        25, np.random.default_rng(104), mode="ones_count", ones_count=2
    )
    results.append(encode_result(pair.primary))
    results.append(encode_result(pair.complement))
    backend.finalize()
    return results


def record_golden(path):
    golden_workload(TraceBackend.record(str(path)))


def _record_mini_not(path, trials=10):
    """A one-run NOT recording, for the strictness tests."""
    host = golden_host()
    (src, dst), _ = _pairs(host)
    backend = TraceBackend.record(str(path))
    result = backend.not_measurement_at(host, 0, src, dst).run(
        trials, np.random.default_rng(5)
    )
    backend.finalize()
    return result


def _replay_mini_not(path, trials=10):
    host = golden_host()
    (src, dst), _ = _pairs(host)
    backend = TraceBackend.replay(str(path))
    return backend.not_measurement_at(host, 0, src, dst).run(
        trials, np.random.default_rng(5)
    )


class TestCodec:
    def test_round_trip_is_exact(self):
        result = SuccessResult(
            success_counts=np.array([[3, 10, 0], [7, 7, 7]], dtype=np.int64),
            trials=10,
            metadata={"operation": "not", "n_destination_rows": 2},
        )
        replayed = decode_result(json.loads(json.dumps(encode_result(result))))
        assert replayed.trials == result.trials
        assert replayed.metadata == result.metadata
        assert replayed.success_counts.dtype == result.success_counts.dtype
        assert np.array_equal(replayed.success_counts, result.success_counts)

    def test_dtype_is_preserved(self):
        result = SuccessResult(
            success_counts=np.array([[1, 2]], dtype=np.int32),
            trials=2,
            metadata={},
        )
        assert decode_result(encode_result(result)).success_counts.dtype == np.int32

    def test_flat_counts_come_back_two_dimensional(self):
        payload = {
            "counts": [4, 5, 6],
            "dtype": "int64",
            "trials": 6,
            "metadata": {},
        }
        assert decode_result(payload).success_counts.shape == (1, 3)


class TestGoldenTrace:
    def test_fixture_is_checked_in(self):
        assert GOLDEN_PATH.is_file(), (
            f"{GOLDEN_PATH} missing; regenerate with "
            "`PYTHONPATH=src python tests/substrate/test_trace.py`"
        )
        payload = json.loads(GOLDEN_PATH.read_text())
        assert payload["format"] == 1
        types = [event["type"] for event in payload["events"]]
        assert types.count("run-not") == 2
        assert types.count("run-logic") == 2

    def test_replay_is_byte_identical_to_live_analog(self):
        live = golden_workload(AnalogBackend())
        replayed = golden_workload(TraceBackend.replay(str(GOLDEN_PATH)))
        assert replayed == live

    def test_recording_reproduces_the_fixture_exactly(self, tmp_path):
        fresh = tmp_path / "golden_trace.json"
        record_golden(fresh)
        assert json.loads(fresh.read_text()) == json.loads(
            GOLDEN_PATH.read_text()
        ), (
            "the analog model drifted from the golden trace; if the "
            "change is intentional, regenerate the fixture with "
            "`PYTHONPATH=src python tests/substrate/test_trace.py`"
        )


class TestRecordReplayRoundTrip:
    def test_round_trip_through_disk(self, tmp_path):
        path = tmp_path / "trace.json"
        recorded = golden_workload(TraceBackend.record(str(path)))
        replayed = golden_workload(TraceBackend.replay(str(path)))
        assert replayed == recorded

    def test_recording_delegates_to_analog_bit_identically(self, tmp_path):
        # A recording sweep must disturb nothing: same counts as a
        # plain analog run of the identical workload.
        recorded = golden_workload(
            TraceBackend.record(str(tmp_path / "t.json"))
        )
        assert recorded == golden_workload(AnalogBackend())

    def test_nothing_is_written_before_finalize(self, tmp_path):
        path = tmp_path / "trace.json"
        host = golden_host()
        (src, dst), _ = _pairs(host)
        backend = TraceBackend.record(str(path))
        backend.not_measurement_at(host, 0, src, dst).run(
            5, np.random.default_rng(0)
        )
        assert not path.exists()
        backend.finalize()
        assert path.exists()


class TestStrictReplay:
    def test_wrong_trial_count_raises(self, tmp_path):
        path = tmp_path / "trace.json"
        _record_mini_not(path, trials=10)
        with pytest.raises(TraceMismatchError, match="no recorded event"):
            _replay_mini_not(path, trials=11)

    def test_wrong_rng_seed_raises(self, tmp_path):
        # Run keys digest the incoming generator state: a replay under a
        # different sweep seed must fail loudly, not silently serve the
        # recorded workload's numbers.
        path = tmp_path / "trace.json"
        _record_mini_not(path)
        host = golden_host()
        (src, dst), _ = _pairs(host)
        backend = TraceBackend.replay(str(path))
        with pytest.raises(TraceMismatchError, match="no recorded event"):
            backend.not_measurement_at(host, 0, src, dst).run(
                10, np.random.default_rng(6)
            )

    def test_exhausted_queue_raises(self, tmp_path):
        path = tmp_path / "trace.json"
        _record_mini_not(path)
        host = golden_host()
        (src, dst), _ = _pairs(host)
        backend = TraceBackend.replay(str(path))
        measurement = backend.not_measurement_at(host, 0, src, dst)
        measurement.run(10, np.random.default_rng(5))
        with pytest.raises(TraceMismatchError, match="no recorded event"):
            measurement.run(10, np.random.default_rng(5))

    def test_wrong_event_type_raises(self, tmp_path):
        path = tmp_path / "trace.json"
        _record_mini_not(path)
        payload = json.loads(path.read_text())
        run_event = next(
            event for event in payload["events"] if event["type"] == "run-not"
        )
        run_event["type"] = "run-logic"
        path.write_text(json.dumps(payload))
        with pytest.raises(TraceMismatchError, match="event type"):
            _replay_mini_not(path)

    def test_unknown_call_raises(self, tmp_path):
        # The recording holds a NOT; the replayed workload asks for AND.
        path = tmp_path / "trace.json"
        _record_mini_not(path)
        host = golden_host()
        _, (ref, com) = _pairs(host)
        backend = TraceBackend.replay(str(path))
        with pytest.raises(TraceMismatchError, match="no recorded event"):
            backend.logic_measurement_at(host, 0, ref, com)

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text("{not json")
        with pytest.raises(TraceMismatchError, match="not valid JSON"):
            TraceBackend.replay(str(path))

    def test_unsupported_format_raises(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"format": 999, "events": []}))
        with pytest.raises(TraceMismatchError, match="unsupported trace format"):
            TraceBackend.replay(str(path))


class TestVerifyMode:
    def test_mode_flags(self):
        backend = TraceBackend.verify()
        assert backend.mode == "verify"
        assert backend.recording

    def test_finalize_without_path_is_a_no_op(self):
        TraceBackend.verify().finalize()

    def test_runs_match_analog_exactly(self):
        assert golden_workload(TraceBackend.verify()) == golden_workload(
            AnalogBackend()
        )


if __name__ == "__main__":
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    record_golden(GOLDEN_PATH)
    print(f"wrote {GOLDEN_PATH}")
