"""Property-based tests (Hypothesis) for the substrate layer.

Each property pins a law the example-based suites can only spot-check:

* :meth:`TableCell.probability_at` — bounded by the fitted values,
  exact at the knots, clamped outside the temperature grid;
* :func:`sample_success_counts` — a pure function of the RNG seed
  (seed reuse => identical counts), bounded by the trial count, and
  converging to the cell probability;
* the trace codec — exact on arbitrary count arrays and metadata;
* :class:`SurrogateTable` persistence — payloads survive a JSON round
  trip without losing a cell, a temperature knot, or a float bit.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.success import SuccessResult
from repro.substrate import (
    SurrogateTable,
    TableCell,
    decode_result,
    encode_result,
    sample_success_counts,
)

#: Finite, repr-round-trippable temperatures on a plausible grid.
temperatures = st.floats(
    min_value=-40.0, max_value=150.0, allow_nan=False, allow_infinity=False
)

probabilities = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)

#: At least one fitted knot; duplicate temperatures collapse via dict.
temperature_grids = st.dictionaries(
    temperatures, probabilities, min_size=1, max_size=6
)


class TestTableCellInterpolation:
    @settings(max_examples=100, deadline=None)
    @given(grid=temperature_grids, query=temperatures)
    def test_interpolation_is_bounded_by_fitted_values(self, grid, query):
        value = TableCell(probabilities=grid).probability_at(query)
        assert min(grid.values()) <= value <= max(grid.values())

    @settings(max_examples=100, deadline=None)
    @given(grid=temperature_grids)
    def test_interpolation_is_exact_at_every_knot(self, grid):
        cell = TableCell(probabilities=grid)
        for temperature, probability in grid.items():
            assert cell.probability_at(temperature) == probability

    @settings(max_examples=100, deadline=None)
    @given(grid=temperature_grids, offset=st.floats(min_value=0.0, max_value=500.0, allow_nan=False))
    def test_interpolation_clamps_outside_the_grid(self, grid, offset):
        cell = TableCell(probabilities=grid)
        low, high = min(grid), max(grid)
        assert cell.probability_at(low - offset) == grid[low]
        assert cell.probability_at(high + offset) == grid[high]


class TestSampleSuccessCounts:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        probability=probabilities,
        trials=st.integers(min_value=1, max_value=1100),
        n_rows=st.integers(min_value=1, max_value=3),
        n_cols=st.integers(min_value=1, max_value=4),
    )
    def test_seed_reuse_is_deterministic_and_bounded(
        self, seed, probability, trials, n_rows, n_cols
    ):
        # trials may cross the internal sampling-block boundary (1024);
        # determinism must hold on both sides of it.
        first = sample_success_counts(
            np.random.default_rng(seed), probability, trials, n_rows, n_cols
        )
        second = sample_success_counts(
            np.random.default_rng(seed), probability, trials, n_rows, n_cols
        )
        assert np.array_equal(first, second)
        assert first.shape == (n_rows, n_cols)
        assert first.min() >= 0
        assert first.max() <= trials

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        probability=probabilities,
    )
    def test_mean_converges_to_the_cell_probability(self, seed, probability):
        # 2000 trials x 16 cells: the fleet-mean standard error is
        # under 0.003, so a 0.05 corridor cannot flake.
        counts = sample_success_counts(
            np.random.default_rng(seed), probability, 2000, 2, 8
        )
        assert abs(counts.mean() / 2000.0 - probability) <= 0.05

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_degenerate_probabilities_are_exact(self, seed):
        zeros = sample_success_counts(np.random.default_rng(seed), 0.0, 50, 2, 2)
        ones = sample_success_counts(np.random.default_rng(seed), 1.0, 50, 2, 2)
        assert not zeros.any()
        assert (ones == 50).all()

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            sample_success_counts(np.random.default_rng(0), 0.5, 0, 1, 1)


#: JSON-representable metadata for a measurement result.
metadata_values = st.one_of(
    st.none(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.text(max_size=12),
)


class TestTraceCodecProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        counts=st.one_of(
            arrays(
                np.int64,
                st.tuples(
                    st.integers(min_value=1, max_value=4),
                    st.integers(min_value=1, max_value=6),
                ),
                elements=st.integers(min_value=0, max_value=10**6),
            ),
            arrays(
                np.int32,
                st.tuples(
                    st.integers(min_value=1, max_value=4),
                    st.integers(min_value=1, max_value=6),
                ),
                elements=st.integers(min_value=0, max_value=10**6),
            ),
        ),
        trials=st.integers(min_value=1, max_value=10**6),
        metadata=st.dictionaries(st.text(max_size=12), metadata_values, max_size=4),
    )
    def test_round_trip_exactness(self, counts, trials, metadata):
        result = SuccessResult(
            success_counts=counts, trials=trials, metadata=metadata
        )
        replayed = decode_result(json.loads(json.dumps(encode_result(result))))
        assert replayed.trials == trials
        assert replayed.metadata == metadata
        assert replayed.success_counts.dtype == counts.dtype
        assert replayed.success_counts.shape == counts.shape
        assert np.array_equal(replayed.success_counts, counts)


#: Table-key components.  Spec names exclude the "|" key separator.
spec_names = st.text(
    alphabet="abcdefghijklmnop0123456789-", min_size=1, max_size=10
)
table_keys = st.tuples(
    spec_names,
    st.sampled_from(["not", "and", "nand", "or", "nor"]),
    st.integers(min_value=1, max_value=32),
    st.sampled_from(["any", "close-close", "middle-far", "far-far"]),
    st.sampled_from(["random", "all01", "ones_count=0", "ones_count=3"]),
)
table_cells = st.builds(
    TableCell,
    probabilities=temperature_grids,
    found_rate=probabilities,
    n_rows=st.integers(min_value=1, max_value=32),
)


class TestSurrogateTablePersistence:
    @settings(max_examples=50, deadline=None)
    @given(
        cells=st.dictionaries(table_keys, table_cells, min_size=1, max_size=8),
        meta=st.dictionaries(st.text(max_size=8), metadata_values, max_size=3),
    )
    def test_payload_round_trip_is_lossless(self, cells, meta):
        table = SurrogateTable(meta=meta)
        for key, cell in cells.items():
            stored = table.cell(key)
            stored.probabilities = dict(cell.probabilities)
            stored.found_rate = cell.found_rate
            stored.n_rows = cell.n_rows

        loaded = SurrogateTable.from_payload(
            json.loads(json.dumps(table.to_payload()))
        )
        assert loaded.meta == table.meta
        assert len(loaded) == len(table)
        for (key, cell), (loaded_key, loaded_cell) in zip(table, loaded):
            assert key == loaded_key
            assert loaded_cell.probabilities == cell.probabilities
            assert loaded_cell.found_rate == cell.found_rate
            assert loaded_cell.n_rows == cell.n_rows
