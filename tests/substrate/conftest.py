"""Fixtures for the substrate backend suite.

The surrogate equivalence tests need a table fitted from the analog
reference.  Fitting walks the smoke-scale fleet once, so the table (and
its on-disk serialization) are session-scoped and shared by every test
in this package.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.characterization.runner import SMOKE
from repro.substrate import FitGrid, SurrogateBackend, fit_surrogate

#: Root seed of the session fit.  The fit draws from the disjoint
#: ``"substrate-fit"`` seed namespace, so sweeps and equivalence checks
#: at the same root seed still measure independent analog data.
FIT_SEED = 3

#: The session grid: the smoke grid plus NOT at 16 destination rows, so
#: the fitted table exhibits Observation 4's strong fan-out degradation
#: (1 -> 2 destinations is a population-confounded hair's width;
#: 2 -> 16 is tens of percent).
FIT_GRID = FitGrid(
    temperatures=(50.0, 70.0),
    not_fan_ins=(1, 2, 16),
    logic_fan_ins=(2, 4),
    logic_ops=("and", "or"),
)


@pytest.fixture(scope="session")
def fit_seed():
    return FIT_SEED


@pytest.fixture(scope="session")
def fit_scale():
    # Smoke fleet, but 3x the trials: the NOT n=16 cell sits near
    # p = 0.5, where 40-trial binomial noise alone would eat the whole
    # equivalence tolerance.
    return dataclasses.replace(SMOKE, trials=120)


@pytest.fixture(scope="session")
def fit_grid():
    return FIT_GRID


@pytest.fixture(scope="session")
def fitted_table(fit_scale, fit_grid):
    return fit_surrogate(fit_scale, FIT_SEED, grid=fit_grid)


@pytest.fixture(scope="session")
def surrogate_path(fitted_table, tmp_path_factory):
    path = tmp_path_factory.mktemp("substrate") / "surrogate_table.json"
    fitted_table.save(str(path))
    return str(path)


@pytest.fixture(scope="session")
def surrogate_backend(fitted_table):
    return SurrogateBackend(fitted_table)
