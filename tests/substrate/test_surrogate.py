"""Cross-backend equivalence: the surrogate against the analog reference.

The headline acceptance criterion: for every (operation, fan-in,
temperature) cell of the fitted grid, the fleet-weighted mean success
rate served by the surrogate backend must sit within an explicit
absolute tolerance of a fresh analog measurement of the same fleet.

Tolerance budget (``TOLERANCE = 0.02`` absolute):

* fit sampling error — the table is fitted from ``trials`` analog
  trials per cell over the smoke fleet (binomial SE of a weighted
  fleet mean: well under 0.005);
* re-measurement error — the analog side of the comparison draws fresh
  trials from a seed namespace disjoint from the fit's
  (``"substrate-fit"``), so the surrogate is validated against data it
  was not fitted on (again < 0.005);
* surrogate sampling error — Bernoulli draws around the table value
  (< 0.005 at fleet aggregation);
* availability drift — the surrogate replays pattern-search gaps from
  fitted found-rates with deterministic draws, so the two fleets can
  differ in a few low-weight targets.

Those terms sum comfortably below 0.02 without making the test flaky.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.characterization.runner import iter_targets
from repro.errors import SubstrateError, SurrogateTableError
from repro.rng import derive_seed
from repro.substrate import (
    AnalogBackend,
    SurrogateBackend,
    SurrogateTable,
    TableCell,
)

#: Absolute per-(operation, fan-in, temperature) tolerance on the
#: fleet-weighted mean success rate; see the module docstring budget.
TOLERANCE = 0.02

#: Seed namespace for the analog re-measurement — distinct from both
#: the fit ("substrate-fit") and any sweep measurement stream.
_EQUIV_NS = "substrate-equivalence"


def _measurement_rng(seed, *context):
    return np.random.default_rng(derive_seed(seed, _EQUIV_NS, *context))


def fleet_cell_means(scale, seed, backend, grid):
    """Fleet-weighted mean success rate per (operation, fan-in, temp).

    Walks the same fleet enumeration the fit used, builds measurements
    through ``backend``, and aggregates weighted means — the sweep
    drivers' aggregation, reduced to the grid's cells.
    """
    sums, weights = {}, {}

    def record(op, fan_in, temperature, mean, weight):
        key = (op, fan_in, temperature)
        sums[key] = sums.get(key, 0.0) + weight * mean
        weights[key] = weights.get(key, 0.0) + weight

    for target in iter_targets(scale, seed):
        for fan_in in grid.not_fan_ins:
            measurement = backend.find_not_measurement(target, fan_in)
            if measurement is None:
                continue
            for temperature in grid.temperatures:
                target.infra.set_temperature(temperature)
                result = measurement.run(
                    scale.trials,
                    _measurement_rng(
                        seed, target.label(), "not", str(fan_in),
                        f"T={temperature}",
                    ),
                )
                record(
                    "not", fan_in, temperature, result.mean_rate, target.weight
                )
        for base_op in grid.logic_ops:
            complement = "nand" if base_op == "and" else "nor"
            for fan_in in grid.logic_fan_ins:
                measurement = backend.find_logic_measurement(
                    target, base_op, fan_in
                )
                if measurement is None:
                    continue
                for temperature in grid.temperatures:
                    target.infra.set_temperature(temperature)
                    pair = measurement.run(
                        scale.trials,
                        _measurement_rng(
                            seed, target.label(), base_op, str(fan_in),
                            f"T={temperature}",
                        ),
                    )
                    record(
                        base_op, fan_in, temperature,
                        pair.primary.mean_rate, target.weight,
                    )
                    record(
                        complement, fan_in, temperature,
                        pair.complement.mean_rate, target.weight,
                    )
        target.infra.set_temperature(50.0)
    return {key: sums[key] / weights[key] for key in sums}


@pytest.fixture(scope="module")
def analog_means(fit_scale, fit_seed, fit_grid):
    return fleet_cell_means(fit_scale, fit_seed, AnalogBackend(), fit_grid)


@pytest.fixture(scope="module")
def surrogate_means(fit_scale, surrogate_backend, fit_seed, fit_grid):
    return fleet_cell_means(fit_scale, fit_seed, surrogate_backend, fit_grid)


class TestCrossBackendEquivalence:
    def test_grid_is_fully_covered(self, analog_means, surrogate_means):
        # Every cell the analog fleet can measure must also be served
        # by the surrogate (same capability gaps, same grid).
        assert set(surrogate_means) == set(analog_means)
        expected_ops = {"not", "and", "nand", "or", "nor"}
        assert {op for op, _n, _t in analog_means} == expected_ops

    def test_every_cell_within_tolerance(self, analog_means, surrogate_means):
        errors = {
            key: abs(surrogate_means[key] - analog_means[key])
            for key in analog_means
        }
        worst = max(errors, key=errors.get)
        assert errors[worst] <= TOLERANCE, (
            f"surrogate diverges at {worst}: "
            f"analog={analog_means[worst]:.4f} "
            f"surrogate={surrogate_means[worst]:.4f} "
            f"|error|={errors[worst]:.4f} > {TOLERANCE}"
        )

    def test_table_round_trips_through_disk(
        self, fitted_table, surrogate_path, fit_scale
    ):
        loaded = SurrogateTable.load(surrogate_path)
        assert len(loaded) == len(fitted_table)
        for (key, cell), (loaded_key, loaded_cell) in zip(
            fitted_table, loaded
        ):
            assert key == loaded_key
            assert cell.probabilities == loaded_cell.probabilities
            assert cell.found_rate == loaded_cell.found_rate
            assert cell.n_rows == loaded_cell.n_rows


class TestFittedStructure:
    """The fitted table must preserve the paper's orderings."""

    def test_not_degrades_with_destination_count(self, fitted_table):
        # Observation 4: success drops as destination rows increase.
        # The 1 -> 2 step is below fit sampling noise at smoke scale
        # (and the n=1 population includes sequential-only dies the
        # simultaneous cells exclude), so pin the wide 2 -> 16 gap where
        # the drive-load penalty dominates any confound.
        p2 = fitted_table.probability("*", "not", 2, 50.0)
        p16 = fitted_table.probability("*", "not", 16, 50.0)
        assert p16 < p2 - 0.10

    def test_and_fan_in_improves_success(self, fitted_table):
        # Observation 10: mean AND success *increases* with fan-in
        # (the worst-case operand patterns get rarer).
        p2 = fitted_table.probability("*", "and", 2, 50.0)
        p4 = fitted_table.probability("*", "and", 4, 50.0)
        assert p4 > p2

    def test_temperature_never_helps_much(self, fitted_table):
        # Observations 7/17: the 50->90degC effect is small and
        # non-improving beyond noise.
        for op, fan_in in (("not", 1), ("and", 2), ("or", 2)):
            p_cool = fitted_table.probability("*", op, fan_in, 50.0)
            p_hot = fitted_table.probability("*", op, fan_in, 70.0)
            assert p_hot <= p_cool + 0.01

    def test_aggregate_and_spec_cells_coexist(self, fitted_table):
        spec_names = {key[0] for key, _cell in fitted_table}
        assert "*" in spec_names
        assert len(spec_names) > 1


class TestSurrogateBackendBehavior:
    def test_samsung_cannot_do_logic(self, fit_scale, surrogate_backend, fit_seed):
        from repro.dram.config import Manufacturer

        for target in iter_targets(
            fit_scale, fit_seed, manufacturers=[Manufacturer.SAMSUNG]
        ):
            assert surrogate_backend.find_logic_measurement(target, "and", 2) is None
            assert surrogate_backend.find_not_measurement(target, 2) is None
            break

    def test_unfitted_fan_in_returns_none(self, fit_scale, surrogate_backend, fit_seed):
        # The session grid fits NOT at n in {1, 2, 16}; n=8 is
        # capability-legal on SK Hynix but absent from the table.
        for target in iter_targets(fit_scale, fit_seed):
            if target.supports_simultaneous:
                assert surrogate_backend.find_not_measurement(target, 8) is None
                break

    def test_address_level_construction_is_refused(
        self, surrogate_backend, ideal_host
    ):
        with pytest.raises(SubstrateError):
            surrogate_backend.not_measurement_at(ideal_host, 0, 0, 96)
        with pytest.raises(SubstrateError):
            surrogate_backend.logic_measurement_at(ideal_host, 0, 0, 96)

    def test_probability_service(self, surrogate_backend):
        p = surrogate_backend.probability("and", 2, temperature_c=50.0)
        assert p is not None and 0.0 < p <= 1.0
        assert surrogate_backend.probability("and", 16) is None

    def test_measurement_metadata_names_the_backend(
        self, fit_scale, surrogate_backend, fit_seed
    ):
        for target in iter_targets(fit_scale, fit_seed):
            measurement = surrogate_backend.find_logic_measurement(
                target, "and", 2
            )
            if measurement is None:
                continue
            pair = measurement.run(5, np.random.default_rng(0))
            assert pair.primary.metadata["backend"] == "surrogate"
            assert pair.primary.metadata["operation"] == "and"
            assert pair.complement.metadata["operation"] == "nand"
            return
        raise AssertionError("no logic-capable target found")

    def test_empty_table_lookup_raises(self):
        table = SurrogateTable()
        with pytest.raises(SurrogateTableError):
            table.probability("*", "and", 2, 50.0)

    def test_fallback_chain_reaches_aggregate(self, fitted_table):
        # A spec name the fit never saw falls back to the fleet cell.
        p_unknown = fitted_table.probability("no-such-spec", "and", 2, 50.0)
        p_aggregate = fitted_table.probability("*", "and", 2, 50.0)
        assert p_unknown == p_aggregate

    def test_empty_cell_interpolation_raises(self):
        with pytest.raises(SurrogateTableError):
            TableCell().probability_at(50.0)
