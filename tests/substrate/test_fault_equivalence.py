"""Cross-backend equivalence of infrastructure fault injection.

Infrastructure faults (:mod:`repro.faults`) are scheduled by label
hash, never by simulator RNG — so the *schedule* of scheduler-level
faults (broken targets, flaky targets, worker deaths) must be a pure
function of the fault plan, identical under the analog engine and the
surrogate.  These tests pin that: the same plan quarantines the same
targets, retries the same number of times, and the surrogate's
bit-identity law (retried == fault-free) holds exactly as it does for
the analog reference.
"""

from __future__ import annotations

import pytest

from repro.characterization import SMOKE, Resilience, RetryPolicy, run_experiment
from repro.faults import FaultPlan

#: One permanently-dead module: label-hashed, backend-independent.
BROKEN_PLAN = FaultPlan(seed=1, broken_targets=("hynix-4gb-m-x8-2666[0]",))

#: A target that fails its first two attempts, then recovers.
FLAKY_PLAN = FaultPlan(
    seed=1,
    flaky_targets=("hynix-4gb-m-x8-2666[0]",),
    flaky_target_attempts=2,
)

FAST_RETRY = RetryPolicy(backoff_s=0.0)


def _stats(result):
    return {label: stats.__dict__ for label, stats in result.groups.items()}


def _quarantine_schedule(result):
    return [
        (q.label, q.collateral, q.reason)
        for q in result.health.quarantined
    ]


@pytest.fixture(scope="module")
def surrogate_scale(surrogate_path):
    return SMOKE.with_backend(f"surrogate:{surrogate_path}")


class TestCrossBackendFaultEquivalence:
    def test_broken_target_quarantine_schedule_matches_analog(
        self, surrogate_scale
    ):
        analog = run_experiment(
            "fig7", scale=SMOKE, seed=0,
            resilience=Resilience(faults=BROKEN_PLAN, retry=FAST_RETRY),
        )
        surrogate = run_experiment(
            "fig7", scale=surrogate_scale, seed=0,
            resilience=Resilience(faults=BROKEN_PLAN, retry=FAST_RETRY),
        )
        assert _quarantine_schedule(analog) == _quarantine_schedule(surrogate)
        assert analog.health.quarantined_count == 1
        assert (
            surrogate.health.completed_targets
            == analog.health.completed_targets
        )
        assert surrogate.health.total_targets == analog.health.total_targets

    def test_flaky_target_retry_schedule_matches_analog(
        self, surrogate_scale
    ):
        analog = run_experiment(
            "fig7", scale=SMOKE, seed=0,
            resilience=Resilience(faults=FLAKY_PLAN, retry=FAST_RETRY),
        )
        surrogate = run_experiment(
            "fig7", scale=surrogate_scale, seed=0,
            resilience=Resilience(faults=FLAKY_PLAN, retry=FAST_RETRY),
        )
        # Two failed attempts then recovery, on both engines.
        assert analog.health.retries >= 2
        assert surrogate.health.retries == analog.health.retries
        assert analog.health.quarantined_count == 0
        assert surrogate.health.quarantined_count == 0

    def test_surrogate_retried_run_bit_identical_to_fault_free(
        self, surrogate_scale
    ):
        # The analog engine's core resilience law, under the surrogate:
        # a run whose faults all recover ends bit-identical to a run
        # that never faulted.
        baseline = run_experiment("fig7", scale=surrogate_scale, seed=0)
        faulted = run_experiment(
            "fig7", scale=surrogate_scale, seed=0,
            resilience=Resilience(faults=FLAKY_PLAN, retry=FAST_RETRY),
        )
        assert faulted.health.retries > 0
        assert _stats(baseline) == _stats(faulted)

    def test_surrogate_worker_death_restart_bit_identical(
        self, surrogate_scale
    ):
        baseline = run_experiment("fig7", scale=surrogate_scale, seed=0)
        plan = FaultPlan(kill_chunk_indices=(0,))
        killed = run_experiment(
            "fig7", scale=surrogate_scale, seed=0, jobs=2,
            resilience=Resilience(faults=plan, retry=FAST_RETRY),
        )
        assert killed.health.worker_restarts == 1
        assert _stats(baseline) == _stats(killed)
