"""Backend selection at the sweep level.

Pins the seams the figure drivers rely on: ``Scale.with_backend``
validation, checkpoint-fingerprint separation between backends, the
surrogate's serial/pooled/batched interchangeability (the same
bit-identity law the analog engine obeys), trace record/replay of a
whole sweep, and the ``trace-record`` + process-pool guard.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.characterization.experiments.base import (
    LogicVariant,
    NotVariant,
    logic_sweep,
    not_sweep,
)
from repro.characterization.parallel import ProcessPoolSweepExecutor
from repro.characterization.resilience import sweep_fingerprint
from repro.characterization.runner import SMOKE, iter_descriptors
from repro.errors import ConfigurationError
from repro.substrate import (
    register_backend,
    reset_backend_cache,
    resolve_backend,
    unregister_backend,
)

NOT_VARIANTS = (NotVariant(1), NotVariant(2))
LOGIC_VARIANTS = (LogicVariant("and", 2), LogicVariant("or", 2))


def assert_groups_identical(serial, parallel):
    """Bit-for-bit equality of two GroupSamples mappings."""
    assert sorted(serial) == sorted(parallel)
    for label in serial:
        a = serial[label].values()
        b = parallel[label].values()
        assert a.shape == b.shape, label
        assert np.array_equal(a, b), label


class TestScaleBackend:
    def test_default_backend_is_analog(self):
        assert SMOKE.backend == "analog"

    def test_with_backend_returns_a_new_scale(self):
        scale = SMOKE.with_backend("trace-verify")
        assert scale.backend == "trace-verify"
        assert scale.trials == SMOKE.trials
        assert SMOKE.backend == "analog"

    def test_empty_backend_rejected(self):
        with pytest.raises(ValueError):
            SMOKE.with_backend("")

    def test_backend_splits_the_checkpoint_fingerprint(self, surrogate_path):
        # Different backends measure different things; a checkpoint
        # recorded under one must not resume under the other.
        descriptors = iter_descriptors(SMOKE)
        fingerprints = {
            sweep_fingerprint("work", scale, 0, descriptors, None)
            for scale in (
                SMOKE,
                SMOKE.with_backend(f"surrogate:{surrogate_path}"),
                SMOKE.with_backend("trace-verify"),
            )
        }
        assert len(fingerprints) == 3


class TestSurrogateSweeps:
    def test_not_sweep_serial_pooled_batched_identical(self, surrogate_path):
        scale = SMOKE.with_backend(f"surrogate:{surrogate_path}")
        serial = not_sweep(scale, 0, NOT_VARIANTS)
        pooled = not_sweep(
            scale, 0, NOT_VARIANTS, executor=ProcessPoolSweepExecutor(2)
        )
        batched = not_sweep(
            dataclasses.replace(scale, batch_trials=1), 0, NOT_VARIANTS
        )
        assert_groups_identical(serial, pooled)
        assert_groups_identical(serial, batched)

    def test_logic_sweep_serial_vs_pooled_identical(self, surrogate_path):
        scale = SMOKE.with_backend(f"surrogate:{surrogate_path}")
        serial = logic_sweep(scale, 0, LOGIC_VARIANTS)
        pooled = logic_sweep(
            scale, 0, LOGIC_VARIANTS, executor=ProcessPoolSweepExecutor(2)
        )
        assert_groups_identical(serial, pooled)

    def test_surrogate_sweep_covers_the_analog_group_labels(
        self, surrogate_path
    ):
        analog = not_sweep(SMOKE, 0, NOT_VARIANTS)
        surrogate = not_sweep(
            SMOKE.with_backend(f"surrogate:{surrogate_path}"), 0, NOT_VARIANTS
        )
        assert sorted(surrogate) == sorted(analog)

    def test_surrogate_actually_replaces_the_analog_draws(
        self, surrogate_path
    ):
        # Same seed, different engines: the per-cell rate vectors must
        # come from different random streams, not silently fall back to
        # the analog path.
        analog = not_sweep(SMOKE, 0, NOT_VARIANTS)
        surrogate = not_sweep(
            SMOKE.with_backend(f"surrogate:{surrogate_path}"), 0, NOT_VARIANTS
        )
        assert any(
            not np.array_equal(analog[label].values(), surrogate[label].values())
            for label in analog
        )

    def test_registered_instance_backend_runs_a_sweep(
        self, fitted_table, surrogate_path
    ):
        # A backend registered as an in-process instance (jobs=1 only —
        # instances don't cross pool boundaries) must behave exactly
        # like the same table resolved from its spec string.
        from repro.substrate import SurrogateBackend

        backend = SurrogateBackend(fitted_table)
        spec = register_backend("sweep-test-surrogate", backend)
        try:
            registered = not_sweep(
                SMOKE.with_backend(spec), 0, NOT_VARIANTS, jobs=1
            )
        finally:
            unregister_backend(spec)
        from_path = not_sweep(
            SMOKE.with_backend(f"surrogate:{surrogate_path}"), 0, NOT_VARIANTS
        )
        assert_groups_identical(registered, from_path)


class TestTraceSweeps:
    def test_record_then_replay_reproduces_the_sweep(self, tmp_path):
        path = tmp_path / "sweep_trace.json"
        spec = f"trace-record:{path}"
        recorded = not_sweep(SMOKE.with_backend(spec), 0, NOT_VARIANTS)
        resolve_backend(spec).finalize()
        reset_backend_cache()
        assert path.exists()

        replayed = not_sweep(
            SMOKE.with_backend(f"trace-replay:{path}"), 0, NOT_VARIANTS
        )
        assert_groups_identical(recorded, replayed)
        # And the recording itself is the plain analog sweep, untouched.
        assert_groups_identical(not_sweep(SMOKE, 0, NOT_VARIANTS), recorded)

    def test_trace_record_refuses_process_pools(self, tmp_path):
        scale = SMOKE.with_backend(f"trace-record:{tmp_path}/t.json")
        with pytest.raises(ConfigurationError, match="jobs=1"):
            not_sweep(scale, 0, NOT_VARIANTS, jobs=2)
        with pytest.raises(ConfigurationError, match="jobs=1"):
            logic_sweep(scale, 0, LOGIC_VARIANTS, jobs=2)

    def test_trace_verify_sweep_matches_analog(self):
        analog = logic_sweep(SMOKE, 0, LOGIC_VARIANTS)
        verified = logic_sweep(
            SMOKE.with_backend("trace-verify"), 0, LOGIC_VARIANTS
        )
        assert_groups_identical(analog, verified)
