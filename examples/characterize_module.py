#!/usr/bin/env python3
"""Characterize one module like the paper's test bench does: sweep
destination-row counts (Fig. 7), operand counts (Fig. 15), and
temperature (Fig. 10 protocol) on a single simulated SK Hynix module,
rendering box plots in the terminal.

Run:  python examples/characterize_module.py
"""

import numpy as np

from repro import ChipGeometry, TestingInfrastructure, sk_hynix_chip
from repro.analysis import render_boxes
from repro.characterization.metrics import BoxStats
from repro.core import (
    LogicSuccessMeasurement,
    NotSuccessMeasurement,
    find_pattern_pair,
)
from repro.dram import ActivationKind

TRIALS = 250


def main() -> None:
    geometry = ChipGeometry(
        banks=2, subarrays_per_bank=4, rows_per_subarray=192, columns=64
    )
    config = sk_hynix_chip().with_geometry(geometry)
    infra = TestingInfrastructure.for_config(config, chip_count=2, seed=21)
    infra.set_temperature(50.0)
    host = infra.host
    decoder = host.module.decoder

    # --- Fig. 7 style: NOT success vs destination rows -----------------
    groups = {}
    for n, kind in [(1, "nn"), (2, "nn"), (4, "nn"), (8, "nn"), (16, "nn"), (32, "n2n")]:
        activation = (
            ActivationKind.N_TO_N if kind == "nn" else ActivationKind.N_TO_2N
        )
        src, dst = find_pattern_pair(
            decoder, geometry, 0, 0, 1,
            n if kind == "nn" else n // 2, activation, seed=n,
        )
        measurement = NotSuccessMeasurement(host, 0, src, dst)
        result = measurement.run(TRIALS, np.random.default_rng(n))
        groups[f"{n} dst"] = BoxStats.from_values(result.flat_rates())
    print("NOT success rate vs destination rows (Fig. 7 protocol):")
    print(render_boxes(groups))

    # --- Fig. 15 style: ops vs operand count ----------------------------
    groups = {}
    for base_op in ("and", "or"):
        for n in (2, 4, 8, 16):
            ref, com = find_pattern_pair(
                decoder, geometry, 0, 2, 3, n, ActivationKind.N_TO_N, seed=n
            )
            measurement = LogicSuccessMeasurement(host, 0, ref, com, base_op)
            pair = measurement.run(TRIALS // 2, np.random.default_rng(n))
            groups[f"{base_op.upper()} n={n}"] = BoxStats.from_values(
                pair.primary.flat_rates()
            )
            complement = "NAND" if base_op == "and" else "NOR"
            groups[f"{complement} n={n}"] = BoxStats.from_values(
                pair.complement.flat_rates()
            )
    print("\nlogic-op success rate vs operand count (Fig. 15 protocol):")
    print(render_boxes(groups))

    # --- Fig. 10 style: temperature sweep on one configuration ----------
    src, dst = find_pattern_pair(
        decoder, geometry, 0, 0, 1, 4, ActivationKind.N_TO_N, seed=4
    )
    measurement = NotSuccessMeasurement(host, 0, src, dst)
    print("\nNOT (4 destination rows) across temperature (Fig. 10 protocol):")
    means = {}
    for temperature in (50.0, 60.0, 70.0, 80.0, 95.0):
        infra.set_temperature(temperature)
        result = measurement.run(TRIALS, np.random.default_rng(99))
        means[temperature] = result.mean_rate
        print(f"  {temperature:5.1f} degC: mean success {result.mean_rate * 100:6.2f}%")
    span = (max(means.values()) - min(means.values())) * 100
    print(f"  mean variation across the sweep: {span:.2f}% (paper: <=1.66%)")


if __name__ == "__main__":
    main()
