#!/usr/bin/env python3
"""Bitmap-index scan computed *inside* DRAM — the paper's motivating
bulk-bitwise workload (§1).

A table of records is indexed by bitmap: one bit vector per categorical
value, one bit per record.  Analytical predicates become Boolean algebra
over bitmaps, which is exactly what the in-DRAM operations accelerate —
the bitmaps never travel to the CPU.  The query

    (method = GET OR method = HEAD) AND status = 200 AND NOT bot

is written as an expression tree and lowered by the SIMDRAM-style
compiler (`repro.core.compiler`), which fuses it into just two in-DRAM
operations: one 2-input OR and one 4-input AND absorbing the NOT into
the free complement terminal... almost — see the printed schedule.

On the calibrated (realistic) die the chained operations compound their
per-op error rates; triple-modular redundancy (`repro.core.reliability`)
recovers most of the loss, the way a deployed PuD system would.

Run:  python examples/bitmap_index_scan.py
"""

import numpy as np

from repro import SeedTree, ideal_calibration, sk_hynix_chip
from repro.bender import DramBenderHost
from repro.core import BitwiseAccelerator, compile_expression, majority_vote
from repro.core.compiler import And, Not, Or, v
from repro.dram import Module

QUERY = And(Or(v("get"), v("head")), v("ok"), Not(v("bot")))


def build_bitmaps(n_records: int, rng: np.random.Generator) -> dict:
    methods = rng.choice(["GET", "POST", "HEAD"], size=n_records, p=[0.7, 0.2, 0.1])
    statuses = rng.choice([200, 404, 500], size=n_records, p=[0.8, 0.15, 0.05])
    bots = rng.random(n_records) < 0.2
    return {
        "get": (methods == "GET").astype(np.uint8),
        "head": (methods == "HEAD").astype(np.uint8),
        "ok": (statuses == 200).astype(np.uint8),
        "bot": bots.astype(np.uint8),
    }


def scan_on_cpu(bitmaps: dict) -> np.ndarray:
    return QUERY.evaluate(bitmaps)


def run_on(module: Module, label: str, rng: np.random.Generator, repeats: int) -> None:
    host = DramBenderHost(module)
    accelerator = BitwiseAccelerator(host, bank=0, subarray_pair=(0, 1))
    program = compile_expression(QUERY)

    bitmaps = build_bitmaps(accelerator.vector_width, rng)
    on_cpu = scan_on_cpu(bitmaps)

    votes = [program.run(accelerator, bitmaps) for _ in range(repeats)]
    in_dram = votes[0] if repeats == 1 else majority_vote(votes)
    agreement = float(np.mean(in_dram == on_cpu))
    print(
        f"{label:>22}: {int(on_cpu.sum())} matches on CPU, "
        f"{int(in_dram.sum())} in DRAM, agreement {agreement * 100:6.2f}%"
    )


def main() -> None:
    config = sk_hynix_chip()
    rng = np.random.default_rng(11)

    program = compile_expression(QUERY)
    print("query:  (GET OR HEAD) AND status=200 AND NOT bot")
    print(f"compiled schedule ({program.total_ops} in-DRAM ops):")
    for step in program.steps:
        print(f"  {step.op.upper():<5} {step.inputs}")
    print()

    ideal = Module(
        config, chip_count=4, seed_tree=SeedTree(3), calibration=ideal_calibration()
    )
    run_on(ideal, "ideal die", rng, repeats=1)

    real = Module(config, chip_count=4, seed_tree=SeedTree(3))
    run_on(real, "real die, single shot", rng, repeats=1)

    real = Module(config, chip_count=4, seed_tree=SeedTree(3))
    run_on(real, "real die, 5-way vote", rng, repeats=5)
    print(
        "\nVoting fixes the *transient* failures (per-trial latch flips"
        " and noise) but not the *static* ones: columns whose sense"
        " amplifiers carry a large fixed offset fail the same way every"
        " repetition.  Those are exactly the cells the paper's >90%"
        " profiling methodology excludes — repro.core.reliability's"
        " CellProfile productizes that second lever."
    )


if __name__ == "__main__":
    main()
