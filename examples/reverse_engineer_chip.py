#!/usr/bin/env python3
"""Reverse engineering a chip from the outside, as the paper does (§4.2,
§5.2): subarray boundaries via RowClone, physical row order via
RowHammer, and the multi-row activation pattern coverage (Fig. 5).

Everything here uses only command sequences and readback — the ground
truth inside the simulator is consulted only at the end to grade the
recovered answers.

Run:  python examples/reverse_engineer_chip.py
"""

import numpy as np

from repro import ChipGeometry, SeedTree, sk_hynix_chip
from repro.bender import DramBenderHost
from repro.dram import Module
from repro.reveng import (
    ActivationScanner,
    RowOrderMapper,
    SubarrayMapper,
    coverage_from_counts,
)


def main() -> None:
    geometry = ChipGeometry(
        banks=2, subarrays_per_bank=4, rows_per_subarray=192, columns=64
    )
    config = sk_hynix_chip().with_geometry(geometry)
    module = Module(config, chip_count=1, seed_tree=SeedTree(9))
    host = DramBenderHost(module)

    # ------------------------------------------------------------------
    # 1. Subarray boundaries: RowClone only copies within a subarray.
    # ------------------------------------------------------------------
    mapper = SubarrayMapper(host, bank=0)
    recovered = mapper.map_bank(coarse_step=32)
    truth = tuple(
        (s * geometry.rows_per_subarray, (s + 1) * geometry.rows_per_subarray)
        for s in range(geometry.subarrays_per_bank)
    )
    print(f"subarray boundaries ({mapper.probe_count} RowClone probes):")
    for start, end in recovered.ranges:
        print(f"  rows [{start:4d}, {end:4d})")
    print(f"  matches ground truth: {recovered.ranges == truth}\n")

    # ------------------------------------------------------------------
    # 2. Physical row order: hammer every row, collect bitflip victims.
    #    Edge rows (one victim) sit next to the sense amplifiers.
    # ------------------------------------------------------------------
    order_mapper = RowOrderMapper(host, bank=0, subarray=1)
    order = order_mapper.recover_order()
    subarray = module.chips[0].bank(0).subarrays[1]
    truth_order = [
        geometry.bank_row(1, subarray.logical_at_physical(p))
        for p in range(geometry.rows_per_subarray)
    ]
    matches = list(order.physical_order) in (truth_order, truth_order[::-1])
    print("physical row order via RowHammer probing:")
    print(f"  edge rows (next to sense amplifiers): {order.edge_rows}")
    print(f"  first 8 rows in physical order: {order.physical_order[:8]}")
    print(f"  matches ground truth (up to direction): {matches}\n")

    # ------------------------------------------------------------------
    # 3. Activation pattern coverage (the Fig. 5 scan).
    # ------------------------------------------------------------------
    scanner = ActivationScanner(host, bank=0, subarray_first=0, subarray_last=1)
    counts = scanner.scan(sample_pairs=800)
    coverage = coverage_from_counts(counts)
    print("N_RF:N_RL activation coverage over 800 probed pairs:")
    for label in sorted(coverage, key=lambda k: -coverage[k]):
        bar = "#" * int(coverage[label] * 120)
        print(f"  {label:>6}: {coverage[label] * 100:5.1f}%  {bar}")
    print(
        "\n(paper Fig. 5: 8:8 and 16:16 dominate at ~24.5% each; 1:1 is "
        "rarest at 0.23%)"
    )


if __name__ == "__main__":
    main()
