#!/usr/bin/env python3
"""What functional completeness buys you: multi-bit integer arithmetic
computed entirely with in-DRAM Boolean operations.

:class:`repro.core.BitSerialAlu` builds a SIMDRAM-style bit-serial ALU
from the paper's operation set: per bit position,

    sum_i     = XOR(a_i, b_i, carry)    XOR = AND(OR(x, y), NAND(x, y))
    carry_i+1 = MAJ3(a_i, b_i, carry)   the in-subarray FracDRAM activation

Every lane (one per shared column) computes in parallel — here, 128
independent 8-bit additions, subtractions, and comparisons per call.

Run:  python examples/majority_adder.py
"""

import numpy as np

from repro import SeedTree, ideal_calibration, sk_hynix_chip
from repro.bender import DramBenderHost
from repro.core import BitSerialAlu, from_bit_slices, to_bit_slices
from repro.dram import Module

BIT_WIDTH = 8


def main() -> None:
    module = Module(
        sk_hynix_chip(),
        chip_count=2,
        seed_tree=SeedTree(5),
        calibration=ideal_calibration(),
    )
    alu = BitSerialAlu(DramBenderHost(module), subarray_pair=(0, 1), maj_subarray=2)

    rng = np.random.default_rng(1)
    a = rng.integers(0, 1 << BIT_WIDTH, alu.lanes)
    b = rng.integers(0, 1 << BIT_WIDTH, alu.lanes)
    a_slices = to_bit_slices(a, BIT_WIDTH)
    b_slices = to_bit_slices(b, BIT_WIDTH)

    total = from_bit_slices(alu.add(a_slices, b_slices))
    difference = from_bit_slices(alu.subtract(a_slices, b_slices))
    less = alu.less_than(a_slices, b_slices)

    print(f"{alu.lanes} parallel {BIT_WIDTH}-bit integer lanes in DRAM")
    print(
        f"  a + b  correct: {int(np.sum(total == a + b))}/{alu.lanes}"
        f"   (e.g. {a[0]} + {b[0]} = {total[0]})"
    )
    print(
        f"  a - b  correct: "
        f"{int(np.sum(difference == (a - b) % (1 << BIT_WIDTH)))}/{alu.lanes}"
        f"   (mod 2^{BIT_WIDTH})"
    )
    print(
        f"  a < b  correct: {int(np.sum(less == (a < b)))}/{alu.lanes}"
    )
    assert np.array_equal(total, a + b)
    assert np.array_equal(difference, (a - b) % (1 << BIT_WIDTH))
    assert np.array_equal(less, (a < b).astype(np.uint8))
    print("all lanes verified against the CPU.")


if __name__ == "__main__":
    main()
