#!/usr/bin/env python3
"""Quickstart: functionally-complete Boolean logic in (simulated) DRAM.

Builds one SK Hynix module on the DRAM Bender-style test bench, then:

1. performs an in-DRAM NOT between neighboring subarrays (§5),
2. performs many-input AND/NAND/OR/NOR via charge sharing (§6),
3. measures the paper's reliability metric — the per-cell success rate —
   on the calibrated (realistic) die.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SeedTree, TestingInfrastructure, ideal_calibration, sk_hynix_chip
from repro.bender import DramBenderHost
from repro.core import (
    LogicOperation,
    LogicSuccessMeasurement,
    NotOperation,
    NotSuccessMeasurement,
    find_pattern_pair,
    ideal_output,
)
from repro.dram import ActivationKind, Module


def main() -> None:
    # ------------------------------------------------------------------
    # A noise-free die first: what do the operations compute?
    # ------------------------------------------------------------------
    config = sk_hynix_chip()
    ideal = Module(
        config, chip_count=1, seed_tree=SeedTree(7), calibration=ideal_calibration()
    )
    host = DramBenderHost(ideal)
    rng = np.random.default_rng(42)

    # The §4 reverse-engineering step: find an address pair whose
    # timing-violating double activation produces the pattern we need.
    src, dst = find_pattern_pair(
        ideal.decoder, config.geometry, 0, 0, 1, 1, ActivationKind.N_TO_N
    )
    print(f"NOT address pair: ACT {src} -> PRE -> ACT {dst}")

    not_op = NotOperation(host, 0, src, dst)
    bits = rng.integers(0, 2, ideal.row_bits, dtype=np.uint8)
    outcome = not_op.run(bits)
    result = next(iter(outcome.outputs.values()))
    expected = 1 - bits[not_op.shared_columns]
    print(f"in-DRAM NOT correct on ideal die: {np.array_equal(result, expected)}")

    # An 8-input AND (and, simultaneously, NAND on the other terminal).
    ref, com = find_pattern_pair(
        ideal.decoder, config.geometry, 0, 2, 3, 8, ActivationKind.N_TO_N
    )
    for op in ("and", "nand", "or", "nor"):
        operation = LogicOperation(host, 0, ref, com, op=op)
        operands = [
            rng.integers(0, 2, ideal.row_bits, dtype=np.uint8)
            for _ in range(operation.n_inputs)
        ]
        out = operation.run(operands)
        truth = ideal_output(op, [o[operation.shared_columns] for o in operands])
        print(
            f"in-DRAM 8-input {op.upper():<4} correct on ideal die: "
            f"{np.array_equal(out.result, truth)}"
        )

    # ------------------------------------------------------------------
    # The calibrated die: how *reliably* does real silicon compute?
    # ------------------------------------------------------------------
    infra = TestingInfrastructure.for_config(config, chip_count=1, seed=7)
    infra.set_temperature(50.0)
    real = infra.host.module

    src, dst = find_pattern_pair(
        real.decoder, config.geometry, 0, 0, 1, 1, ActivationKind.N_TO_N
    )
    measurement = NotSuccessMeasurement(infra.host, 0, src, dst)
    result = measurement.run(trials=300, rng=np.random.default_rng(1))
    print(
        f"\nNOT success rate (1 destination row, 300 trials): "
        f"{result.mean_rate * 100:.2f}%   [paper: 98.37%]"
    )

    ref, com = find_pattern_pair(
        real.decoder, config.geometry, 0, 2, 3, 16, ActivationKind.N_TO_N
    )
    logic = LogicSuccessMeasurement(infra.host, 0, ref, com, base_op="and")
    pair = logic.run(trials=200, rng=np.random.default_rng(2))
    print(
        f"16-input AND success rate: {pair.primary.mean_rate * 100:.2f}%   "
        f"[paper: 94.94%]"
    )
    print(
        f"16-input NAND success rate: {pair.complement.mean_rate * 100:.2f}%  "
        f"[paper: 94.94%]"
    )


if __name__ == "__main__":
    main()
