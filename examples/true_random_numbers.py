#!/usr/bin/env python3
"""True random numbers from DRAM — the follow-on the paper itself
suggests (§8.1): activate cells holding *conflicting* values so the
bitlines equalize at exactly VDD/2, and the sense amplifier's resolution
is decided by thermal noise.

The raw stream is biased — per-column sense-amplifier offsets pin some
columns — so a von Neumann corrector (pairing consecutive draws of each
column) produces the final stream, exactly as QUAC-TRNG does.

Run:  python examples/true_random_numbers.py
"""

import numpy as np

from repro import SeedTree, sk_hynix_chip
from repro.bender import DramBenderHost
from repro.core import DramTrng, assess_quality
from repro.dram import Module


def describe(label: str, bits: np.ndarray) -> None:
    quality = assess_quality(bits)
    verdict = "PASS" if quality.looks_random else "FAIL"
    print(
        f"  {label:>9}: {quality.bit_count} bits, "
        f"ones {quality.ones_fraction * 100:5.2f}%, "
        f"longest run {quality.longest_run}, "
        f"serial corr {quality.serial_correlation:+.4f}  [{verdict}]"
    )


def main() -> None:
    module = Module(sk_hynix_chip(), chip_count=2, seed_tree=SeedTree(23))
    trng = DramTrng(DramBenderHost(module), bank=0, subarray=2, block_local_row=40)

    print("DRAM TRNG: 4-row conflict activation, one batch per program\n")
    raw = trng.raw_bits(8000)
    describe("raw", raw)
    debiased = trng.random_bits(4000)
    describe("debiased", debiased)

    token = trng.random_bytes(16)
    print(f"\n128-bit token from DRAM noise: {token.hex()}")
    efficiency = 4000 / trng.raw_bits_generated
    print(
        f"corrector efficiency: {efficiency * 100:.1f}% of raw bits kept "
        f"({trng.raw_bits_generated} raw bits consumed in total)"
    )


if __name__ == "__main__":
    main()
