#!/usr/bin/env python3
"""The end-to-end PuD runtime: compute on DRAM-resident vectors without
ever thinking about row addresses or activation patterns.

:class:`repro.system.PudRuntime` reverse-engineers operation blocks at
startup, allocates vector slots around them, moves operands with
RowClone, and stages data through the memory controller only where the
operation set physically cannot (a fact worth reading the runtime's
docstring for: values computable purely in-DRAM across a subarray pair
are exactly the *monotone* functions of the stored data).

Run:  python examples/pud_runtime.py
"""

import numpy as np

from repro import SeedTree, ideal_calibration, sk_hynix_chip
from repro.bender import DramBenderHost
from repro.dram import Module
from repro.system import PudRuntime


def main() -> None:
    module = Module(
        sk_hynix_chip(),
        chip_count=2,
        seed_tree=SeedTree(19),
        calibration=ideal_calibration(),
    )
    runtime = PudRuntime(DramBenderHost(module), bank=0, subarray_pair=(0, 1))
    rng = np.random.default_rng(4)

    print(
        f"runtime ready: {runtime.lane_count} lanes per vector, "
        f"{runtime.free_slots()} free vector slots\n"
    )

    # Allocate four DRAM-resident vectors.
    values = {
        name: rng.integers(0, 2, runtime.lane_count, dtype=np.uint8)
        for name in "abcd"
    }
    handles = {name: runtime.store(bits) for name, bits in values.items()}

    # result = (a AND b) OR NOT(c) XOR d — no row addresses anywhere.
    a_and_b = runtime.and_(handles["a"], handles["b"])
    not_c = runtime.not_(handles["c"])
    or_part = runtime.or_(a_and_b, runtime.move(not_c, a_and_b.side))
    result = runtime.xor(or_part, handles["d"])

    in_dram = runtime.load(result)
    expected = ((values["a"] & values["b"]) | (1 - values["c"])) ^ values["d"]
    print(f"(a AND b) OR NOT c XOR d over {runtime.lane_count} lanes")
    print(f"  correct lanes: {int(np.sum(in_dram == expected))}/{runtime.lane_count}")
    print(f"  cost: {runtime.stats}")
    assert np.array_equal(in_dram, expected)

    # Stored vectors are untouched by the computation.
    for name, handle in handles.items():
        assert np.array_equal(runtime.load(handle), values[name])
    print("  all stored vectors intact after computation")

    # Slots recycle.
    before = runtime.free_slots()
    runtime.free(result)
    runtime.free(a_and_b)
    print(f"  slots after free(): {runtime.free_slots()} (was {before})")


if __name__ == "__main__":
    main()
