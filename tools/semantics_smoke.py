#!/usr/bin/env python3
"""Semantics smoke: every shipped flow and compiler round-trip proves clean.

Three stages, each a hard failure on any unproved truth table:

1. ``python -m repro.staticcheck --semantics`` — the symbolic proofs of
   every sequences constructor at every speed grade plus the compiler
   lowering catalogue (SEM301 on any mismatch).
2. Compiler round-trips over the expressions the ``examples/`` programs
   compile (including the bitmap-index-scan query) and a set of
   concrete-syntax parses.
3. An end-to-end run on an ideal module with ``verify_semantics="error"``:
   the executor gate must accept a legitimate NOT + AND flow, and the
   committed semantic session must hold the proved functions.

Run:  python tools/semantics_smoke.py
"""

from __future__ import annotations

import sys

import numpy as np


def prove_cli() -> None:
    from repro.staticcheck.__main__ import main

    code = main(["--semantics"])
    if code != 0:
        raise SystemExit(f"--semantics exited {code}")
    print("[smoke] --semantics proofs clean")


def prove_compiler_round_trips() -> None:
    from repro.core.compiler import (
        And,
        Not,
        Or,
        Xor,
        compile_expression,
        parse_expression,
        v,
    )

    expressions = [
        # The bitmap-index-scan example's query (examples/bitmap_index_scan.py).
        And(Or(v("get"), v("head")), v("ok"), Not(v("bot"))),
        # Concrete-syntax round trips.
        parse_expression("~(a & b) | c"),
        parse_expression("a ^ b ^ c"),
        parse_expression("~(~a | ~b) & (c | d)"),
    ]
    for expr in expressions:
        program = compile_expression(expr)  # raises on a failed proof
        assert program.proof is not None
        print(f"[smoke] compiler: {program.proof.describe()}")


def prove_executor_gate() -> None:
    from repro import SeedTree, ideal_calibration, sk_hynix_chip
    from repro.bender import DramBenderHost
    from repro.core.addressing import find_pattern_pair
    from repro.core.layout import bank_rows
    from repro.core.frac import store_half_vdd
    from repro.core.sequences import logic_program, not_program
    from repro.dram.decoder import ActivationKind
    from repro.dram.module import Module
    from repro.staticcheck.semantics import sym_and, sym_not, sym_var

    module = Module(
        sk_hynix_chip(),
        chip_count=1,
        seed_tree=SeedTree(7),
        calibration=ideal_calibration(),
    )
    host = DramBenderHost(module, verify_semantics="error")
    geometry = module.config.geometry
    rng = np.random.default_rng(0)

    ref_row, com_row = find_pattern_pair(
        module.decoder, geometry, 0, 0, 1, 2, kind=ActivationKind.N_TO_N, seed=2
    )
    pattern = module.decoder.neighboring_pattern(0, ref_row, com_row)
    ref_rows = bank_rows(geometry, pattern.subarray_first, pattern.rows_first)
    com_rows = bank_rows(geometry, pattern.subarray_last, pattern.rows_last)

    # Bind operand names before any program runs: the gate's
    # clone-and-commit replaces the live session on every execution.
    session = host.executor.semantic_session()
    for name, row in zip("ab", com_rows):
        session.bind(0, row, name)
    ones = np.ones(module.row_bits, dtype=np.uint8)
    host.fill_row(0, ref_rows[0], ones)
    store_half_vdd(host, 0, ref_rows[1])
    for row in com_rows:
        host.fill_row(0, row, rng.integers(0, 2, module.row_bits, dtype=np.uint8))
    host.run(logic_program(host.timing, 0, ref_row, com_row))

    session = host.executor.semantic_session()
    expected = sym_and(sym_var("a"), sym_var("b"))
    for row in com_rows:
        assert session.value_of(0, row) == expected, "AND proof mismatch"
    for row in ref_rows:
        assert session.value_of(0, row) == sym_not(expected), "NAND proof mismatch"
    print(f"[smoke] executor gate: AND/NAND proved ({expected.describe()})")

    src_row, dst_row = find_pattern_pair(
        module.decoder, geometry, 0, 2, 3, 2, kind=ActivationKind.N_TO_N, seed=3
    )
    pattern = module.decoder.neighboring_pattern(0, src_row, dst_row)
    session = host.executor.semantic_session()
    src_rows = bank_rows(geometry, pattern.subarray_first, pattern.rows_first)
    for row in src_rows:
        session.bind(0, row, "x")
    for row in src_rows:
        host.fill_row(0, row, rng.integers(0, 2, module.row_bits, dtype=np.uint8))
    host.run(not_program(host.timing, 0, src_row, dst_row))
    session = host.executor.semantic_session()
    for row in bank_rows(geometry, pattern.subarray_last, pattern.rows_last):
        assert session.value_of(0, row) == sym_not(sym_var("x")), "NOT proof mismatch"
    print("[smoke] executor gate: NOT proved (f(x) table=0x1)")


def main() -> int:
    prove_cli()
    prove_compiler_round_trips()
    prove_executor_gate()
    print("[smoke] all semantic proofs clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
