"""Calibration harness: prints the paper's headline anchors vs measured.

Run stages selectively:  python tools/calibrate.py fig7 fig12 ...
"""
import sys
import time

from repro.characterization import run_experiment, Scale
from repro.dram.config import ChipGeometry

CAL = Scale(
    name="cal",
    modules_per_spec=1,
    chips_per_module=1,
    banks_per_module=1,
    pairs_per_bank=1,
    trials=250,
    geometry=ChipGeometry(banks=1, subarrays_per_bank=2, rows_per_subarray=192, columns=64),
)

def show(experiment_id):
    # staticcheck: ignore[DET203] runtime shown on the console, never in results
    t0 = time.time()
    result = run_experiment(experiment_id, CAL, seed=1)
    print(result.format_table())
    print(f"[{experiment_id}: {time.time()-t0:.1f}s]\n")  # staticcheck: ignore[DET203]

if __name__ == "__main__":
    for experiment_id in sys.argv[1:] or ["fig7"]:
        show(experiment_id)
