#!/usr/bin/env python
"""Crash-and-resume smoke test: SIGKILL a sweep mid-run, resume it, and
assert record-level equality against an uninterrupted baseline.

This is the end-to-end check of the resilience layer's core guarantee —
a resumed run is **bit-identical** to a run that was never interrupted:

1. run the experiment to completion with ``--checkpoint-dir`` (baseline);
2. start the same run in a fresh checkpoint directory, wait until its
   checkpoint shows partial progress, and SIGKILL the process (no
   cleanup, exactly like a machine dying);
3. re-run with ``--resume`` to completion;
4. compare the final checkpoints record by record.

Usage::

    python tools/crash_resume_smoke.py            # serial sweep
    python tools/crash_resume_smoke.py --jobs 2   # through the pool

Exits non-zero (with a diff summary) on any mismatch.  Used by the
``crash-resume`` CI job.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _sweep_command(checkpoint_dir: str, args, resume: bool = False):
    command = [
        sys.executable,
        "-m",
        "repro.characterization",
        args.experiment,
        "--scale",
        "smoke",
        "--seed",
        str(args.seed),
        "--jobs",
        str(args.jobs),
        "--checkpoint-dir",
        checkpoint_dir,
    ]
    if resume:
        command.append("--resume")
    return command


def _environment():
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    return env


def _checkpoint_path(checkpoint_dir: str, args) -> str:
    return os.path.join(checkpoint_dir, f"{args.experiment}-sweep00.json")


def _read_records(path: str):
    with open(path) as handle:
        payload = json.load(handle)
    return payload["records"]


def _run_to_completion(checkpoint_dir: str, args, resume: bool = False) -> None:
    subprocess.run(
        _sweep_command(checkpoint_dir, args, resume=resume),
        check=True,
        env=_environment(),
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
    )


def _kill_group(process) -> None:
    # SIGKILL the whole process group: a ``--jobs N`` sweep forks pool
    # workers, and killing only the parent would orphan them (holding
    # inherited pipe fds open, which hangs anything reading our output).
    try:
        os.killpg(process.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    process.wait()


def _crash_mid_run(checkpoint_dir: str, args, total_targets: int) -> int:
    """Start the sweep, SIGKILL it once the checkpoint shows partial
    progress, and return how many records the crash left behind."""
    path = _checkpoint_path(checkpoint_dir, args)
    for round_number in range(args.max_kill_rounds):
        process = subprocess.Popen(
            _sweep_command(checkpoint_dir, args),
            env=_environment(),
            cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL,
            start_new_session=True,
        )
        killed = False
        while process.poll() is None:
            if os.path.exists(path):
                try:
                    count = len(_read_records(path))
                except (json.JSONDecodeError, OSError):
                    # Impossible for an atomic writer; fail loudly rather
                    # than masking a torn checkpoint with a retry.
                    _kill_group(process)
                    raise SystemExit(
                        f"FAIL: torn/unreadable checkpoint at {path}"
                    )
                if 0 < count < total_targets:
                    _kill_group(process)
                    killed = True
                    break
            time.sleep(0.002)
        if killed:
            return len(_read_records(path))
        # The run finished before we caught it mid-flight: wipe and retry.
        process.wait()
        if os.path.exists(path):
            os.unlink(path)
        print(
            f"[crash-resume] round {round_number}: run finished before the "
            "kill window; retrying"
        )
    raise SystemExit(
        f"FAIL: could not catch the sweep mid-run in "
        f"{args.max_kill_rounds} attempts"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiment", default="fig7")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--total-targets", type=int, default=9,
                        help="sweep targets at SMOKE scale (kill window upper bound)")
    parser.add_argument("--max-kill-rounds", type=int, default=20)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as workspace:
        baseline_dir = os.path.join(workspace, "baseline")
        crashed_dir = os.path.join(workspace, "crashed")

        print(f"[crash-resume] baseline run ({args.experiment}, "
              f"--jobs {args.jobs})")
        _run_to_completion(baseline_dir, args)
        baseline = _read_records(_checkpoint_path(baseline_dir, args))
        if len(baseline) != args.total_targets:
            raise SystemExit(
                f"FAIL: baseline completed {len(baseline)} targets, "
                f"expected {args.total_targets}"
            )

        partial = _crash_mid_run(crashed_dir, args, args.total_targets)
        print(f"[crash-resume] SIGKILLed mid-run with "
              f"{partial}/{args.total_targets} targets checkpointed")

        print("[crash-resume] resuming")
        _run_to_completion(crashed_dir, args, resume=True)
        resumed = _read_records(_checkpoint_path(crashed_dir, args))

        if resumed != baseline:
            baseline_by_index = {r[0]: r[1] for r in baseline}
            resumed_by_index = {r[0]: r[1] for r in resumed}
            missing = sorted(set(baseline_by_index) - set(resumed_by_index))
            extra = sorted(set(resumed_by_index) - set(baseline_by_index))
            differing = sorted(
                i
                for i in set(baseline_by_index) & set(resumed_by_index)
                if baseline_by_index[i] != resumed_by_index[i]
            )
            raise SystemExit(
                "FAIL: resumed run diverged from uninterrupted baseline: "
                f"missing targets {missing}, extra {extra}, "
                f"differing {differing}"
            )
        print(
            f"[crash-resume] OK: resumed run bit-identical to baseline "
            f"({len(baseline)} targets, {partial} from before the crash)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
